"""The ragged program graph IR.

CoRa's core insight (I1) is that raggedness is known *before* execution:
the auxiliary work of a whole model can be hoisted out of the kernels and
shared.  This module lifts that insight from single operators to whole
programs.  A :class:`Program` is a directed acyclic graph whose nodes are
scheduled ragged operators and whose edges are ragged tensor *values*:

* a :class:`KernelNode` wraps a :class:`~repro.core.schedule.Schedule` and
  is lowered / code-generated through the executor's
  :class:`~repro.core.codegen.CodegenBackend` machinery exactly like an
  op-by-op ``build_and_run`` call would be;
* a :class:`HostNode` wraps a host-side NumPy function (packed gemms,
  layout marshalling, layer normalisation) that writes its result into a
  pre-planned output buffer.

Because every value's layout is fixed once the mini-batch's raggedness
signature is known, the :mod:`~repro.core.planner` can topologically order
the graph, run liveness analysis, and assign every intermediate value into
a reusable arena slab before anything executes; the
:class:`~repro.core.session.Session` then compiles the whole program ahead
of time and replays it with a single flat dispatch loop.
"""

from __future__ import annotations

import dataclasses
import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import CoraError
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout


class ProgramError(CoraError):
    """Raised for malformed program graphs (unknown values, cycles, ...)."""


#: Value roles.  ``input`` values are bound at ``Session.run`` time,
#: ``constant`` values carry an array fixed at program-construction time
#: (weights, mask matrices), ``intermediate`` values are produced by nodes
#: and live in the planned arena.
ROLE_INPUT = "input"
ROLE_CONSTANT = "constant"
ROLE_INTERMEDIATE = "intermediate"


@dataclass
class ValueSpec:
    """One edge of the program graph: a ragged or dense tensor value.

    A *ragged* value carries a :class:`RaggedLayout` and materialises as a
    :class:`~repro.core.ragged_tensor.RaggedTensor` over a flat buffer; a
    *dense* value carries a plain shape (e.g. the packed ``(tokens,
    hidden)`` matrix of a fused-vloop projection).
    """

    name: str
    layout: Optional[RaggedLayout] = None
    shape: Optional[Tuple[int, ...]] = None
    dtype: np.dtype = np.float32
    role: str = ROLE_INTERMEDIATE
    #: the fixed array of a constant value
    array: Optional[np.ndarray] = None
    #: graph structure, filled in by :class:`Program`
    producer: Optional[int] = None
    consumers: List[int] = field(default_factory=list)

    @property
    def is_ragged(self) -> bool:
        return self.layout is not None

    @property
    def num_elements(self) -> int:
        if self.layout is not None:
            return int(self.layout.total_size())
        size = 1
        for s in self.shape or ():
            size *= int(s)
        return size

    @property
    def nbytes(self) -> int:
        return self.num_elements * np.dtype(self.dtype).itemsize


@dataclass
class ProgramNode:
    """Base class of program-graph nodes.

    ``elementwise`` names the inputs each output element depends on only
    pointwise: the node's (single) output may safely alias any of those
    inputs' buffers -- the planner uses this to schedule provably-safe
    in-place updates that share the input's arena slab instead of double
    buffering.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    elementwise: Tuple[str, ...] = ()

    @property
    def kind(self) -> str:
        return "node"


@dataclass
class KernelNode(ProgramNode):
    """A scheduled ragged operator, compiled through the codegen backend.

    ``bindings`` maps the schedule's input-tensor names to program value
    names; the single output value's layout is declared up front (it is
    validated against the compiled kernel's output plan at session-compile
    time).
    """

    schedule: Schedule = None
    bindings: Dict[str, str] = field(default_factory=dict)
    input_layouts: Optional[Dict[str, RaggedLayout]] = None

    @property
    def kind(self) -> str:
        return "kernel"


@dataclass
class HostNode(ProgramNode):
    """A host-side NumPy step writing into pre-planned output buffers.

    ``fn`` is called as ``fn(*outputs, *inputs)`` where each output is the
    materialised value (a :class:`~repro.core.ragged_tensor.RaggedTensor`
    for ragged values, a shaped ``ndarray`` view for dense values) backed
    by its planned arena buffer.  With ``fills_output=True`` the function
    promises to overwrite every element of each output, so the dispatcher
    can skip the pre-zeroing pass.
    """

    fn: Callable = None
    fills_output: bool = True

    @property
    def kind(self) -> str:
        return "host"


_PROGRAM_UIDS = iter(range(1, 1 << 62))


class Program:
    """A ragged program graph, built once per raggedness signature.

    Nodes are appended in execution (hence topological) order through
    :meth:`add_kernel` / :meth:`add_host`; values are declared through
    :meth:`add_input` / :meth:`add_constant` or implicitly as node
    outputs.  :meth:`mark_output` selects the values ``Session.run``
    returns.
    """

    def __init__(self, name: str):
        self.name = name
        self.uid = next(_PROGRAM_UIDS)
        self.values: Dict[str, ValueSpec] = {}
        self.nodes: List[ProgramNode] = []
        self.outputs: List[str] = []
        #: optional rebuild recipe (see :func:`register_program_builder`):
        #: a picklable description from which an identical program can be
        #: reconstructed in another process.  ``None`` for ad-hoc programs.
        self.recipe: Optional[Tuple] = None
        #: merge metadata (set by :func:`merge_programs`): value names
        #: whose producers must start unobstructed (fresh arena slabs),
        #: the per-value merge-group index, and the per-part rename maps.
        self.merge_roots: frozenset = frozenset()
        self.merge_groups: Dict[str, int] = {}
        self.merge_info: Optional["MergeInfo"] = None

    # -- value declaration ---------------------------------------------------

    def _declare(self, spec: ValueSpec) -> str:
        if spec.name in self.values:
            raise ProgramError(
                f"value {spec.name!r} already declared in program {self.name!r}")
        if (spec.layout is None) == (spec.shape is None):
            raise ProgramError(
                f"value {spec.name!r} must have exactly one of layout / shape")
        self.values[spec.name] = spec
        return spec.name

    def add_input(self, name: str, layout: Optional[RaggedLayout] = None,
                  shape: Optional[Sequence[int]] = None,
                  dtype: np.dtype = np.float32) -> str:
        """Declare a value bound by the caller at ``Session.run`` time."""
        return self._declare(ValueSpec(
            name=name, layout=layout,
            shape=None if shape is None else tuple(int(s) for s in shape),
            dtype=np.dtype(dtype), role=ROLE_INPUT))

    def add_constant(self, name: str, array: np.ndarray) -> str:
        """Declare a value fixed at program-construction time (weights).

        The array is referenced, not copied -- treat it as immutable for
        the lifetime of the program.
        """
        array = np.asarray(array)
        return self._declare(ValueSpec(
            name=name, shape=tuple(array.shape), dtype=array.dtype,
            role=ROLE_CONSTANT, array=array))

    # -- node construction -----------------------------------------------------

    def _check_inputs(self, node_name: str, names: Sequence[str]) -> None:
        for n in names:
            if n not in self.values:
                raise ProgramError(
                    f"node {node_name!r} reads undeclared value {n!r}")

    def _add_node(self, node: ProgramNode) -> None:
        index = len(self.nodes)
        self.nodes.append(node)
        for n in node.inputs:
            self.values[n].consumers.append(index)
        for n in node.outputs:
            self.values[n].producer = index

    def add_kernel(self, name: str, schedule: Schedule,
                   bindings: Dict[str, str], output_layout: RaggedLayout,
                   out: Optional[str] = None,
                   input_layouts: Optional[Dict[str, RaggedLayout]] = None,
                   ) -> str:
        """Append a scheduled-operator node; returns its output value name."""
        self._check_inputs(name, list(bindings.values()))
        out = out or name
        self._declare(ValueSpec(name=out, layout=output_layout))
        self._add_node(KernelNode(
            name=name, inputs=tuple(bindings.values()), outputs=(out,),
            schedule=schedule, bindings=dict(bindings),
            input_layouts=input_layouts))
        return out

    def add_host(self, name: str, fn: Callable, inputs: Sequence[str],
                 output_layouts: Optional[Dict[str, RaggedLayout]] = None,
                 output_shapes: Optional[Dict[str, Sequence[int]]] = None,
                 fills_output: bool = True,
                 elementwise: Optional[Sequence[str]] = None,
                 ) -> Tuple[str, ...]:
        """Append a host-side step; returns its output value names.

        Outputs are declared through ``output_layouts`` (ragged) and/or
        ``output_shapes`` (dense); ``fn`` receives them first, in
        declaration order, followed by the materialised inputs.

        ``elementwise`` names inputs the output depends on only pointwise
        (``out[i] = f(in[i], ...)``): the planner may then alias the
        output onto one of those inputs' arena slabs (in-place update)
        when that input is otherwise dead.  Requires a single output of
        the same element count as each named input, and
        ``fills_output=True`` (a pre-zeroing pass would clobber the
        aliased input before ``fn`` reads it).
        """
        self._check_inputs(name, inputs)
        out_names: List[str] = []
        for out, layout in (output_layouts or {}).items():
            self._declare(ValueSpec(name=out, layout=layout))
            out_names.append(out)
        for out, shape in (output_shapes or {}).items():
            self._declare(ValueSpec(
                name=out, shape=tuple(int(s) for s in shape)))
            out_names.append(out)
        if not out_names:
            raise ProgramError(f"host node {name!r} declares no outputs")
        elementwise = tuple(elementwise or ())
        if elementwise:
            if len(out_names) != 1:
                raise ProgramError(
                    f"host node {name!r}: elementwise (in-place-safe) nodes "
                    f"must have exactly one output, got {len(out_names)}")
            if not fills_output:
                raise ProgramError(
                    f"host node {name!r}: elementwise nodes require "
                    "fills_output=True (pre-zeroing would clobber the "
                    "aliased input)")
            out_elements = self.values[out_names[0]].num_elements
            for n in elementwise:
                if n not in inputs:
                    raise ProgramError(
                        f"host node {name!r}: elementwise input {n!r} is "
                        f"not among the node's inputs {list(inputs)}")
                if self.values[n].num_elements != out_elements:
                    raise ProgramError(
                        f"host node {name!r}: elementwise input {n!r} has "
                        f"{self.values[n].num_elements} elements but the "
                        f"output has {out_elements}")
        self._add_node(HostNode(
            name=name, inputs=tuple(inputs), outputs=tuple(out_names),
            fn=fn, fills_output=fills_output, elementwise=elementwise))
        return tuple(out_names)

    def mark_output(self, *names: str) -> None:
        """Select the values returned by ``Session.run``."""
        for n in names:
            if n not in self.values:
                raise ProgramError(f"unknown output value {n!r}")
            if self.values[n].role != ROLE_INTERMEDIATE:
                raise ProgramError(
                    f"output {n!r} must be produced by a node, not a "
                    f"{self.values[n].role}")
            if n not in self.outputs:
                self.outputs.append(n)

    def dense_shape_of(self, name: str) -> Tuple[int, ...]:
        """The shape of a dense value; a clear error for ragged values.

        Node builders over packed (dense) values use this so binding a
        ragged value fails with a :class:`ProgramError` naming the value
        instead of an opaque ``TypeError``.
        """
        if name not in self.values:
            raise ProgramError(f"unknown value {name!r}")
        spec = self.values[name]
        if spec.shape is None:
            raise ProgramError(
                f"value {name!r} is ragged; this node requires a dense "
                "(packed) value")
        return spec.shape

    # -- introspection ----------------------------------------------------------

    @property
    def kernel_nodes(self) -> List[KernelNode]:
        return [n for n in self.nodes if isinstance(n, KernelNode)]

    @property
    def host_nodes(self) -> List[HostNode]:
        return [n for n in self.nodes if isinstance(n, HostNode)]

    def intermediates(self) -> List[ValueSpec]:
        """Values produced by nodes (the arena-planned set)."""
        return [v for v in self.values.values()
                if v.role == ROLE_INTERMEDIATE]

    def input_values(self) -> List[ValueSpec]:
        return [v for v in self.values.values() if v.role == ROLE_INPUT]

    def validate(self) -> None:
        """Check graph well-formedness (producers exist, outputs marked)."""
        if not self.outputs:
            raise ProgramError(f"program {self.name!r} has no marked outputs")
        for v in self.values.values():
            if v.role == ROLE_INTERMEDIATE and v.producer is None:
                raise ProgramError(
                    f"intermediate value {v.name!r} has no producer")

    def __repr__(self) -> str:
        return (f"Program({self.name!r}, nodes={len(self.nodes)}, "
                f"values={len(self.values)}, outputs={self.outputs})")


# ---------------------------------------------------------------------------
# Program rebuild recipes
# ---------------------------------------------------------------------------
#
# Host-node functions and schedule bodies are local closures, so a
# ``Program`` cannot be pickled across process boundaries.  A *recipe*
# sidesteps pickling entirely: it names a registered builder function plus
# the (picklable) keyword arguments that reproduce the program, and the
# receiving process rebuilds -- and recompiles -- an identical program
# locally.  Builders must be deterministic: the same recipe must yield the
# same node order, value names, layouts and constant arrays, so the
# resulting :class:`~repro.core.planner.ProgramPlan` is identical in every
# process (the process-pool engine verifies this with a plan fingerprint).

_PROGRAM_BUILDERS: Dict[str, Callable[..., "Program"]] = {}


def register_program_builder(name: str,
                             builder: Callable[..., "Program"]) -> None:
    """Register a deterministic program builder under ``name``.

    The builder is invoked as ``builder(**kwargs)`` by
    :func:`build_from_recipe`; its keyword arguments must be picklable.
    Re-registering the same name overwrites (module reload friendliness).
    """
    if not callable(builder):
        raise TypeError(f"builder for {name!r} must be callable")
    _PROGRAM_BUILDERS[name] = builder


def make_recipe(module: str, builder: str, **kwargs) -> Tuple:
    """A recipe tuple: import ``module``, call registered ``builder``."""
    return ("builder", module, builder, kwargs)


def build_from_recipe(recipe: Tuple) -> "Program":
    """Rebuild a program from its recipe (see
    :func:`register_program_builder`).

    ``("builder", module, name, kwargs)`` imports ``module`` first (so the
    import side effect registers the builder) and calls the registered
    builder; ``("merged", opts)`` recursively rebuilds the parts and
    re-merges them with the recorded sharing/stagger options.
    """
    if not isinstance(recipe, tuple) or not recipe:
        raise ProgramError(f"malformed program recipe: {recipe!r}")
    kind = recipe[0]
    if kind == "merged":
        opts = recipe[1]
        parts = [build_from_recipe(r) for r in opts["parts"]]
        return merge_programs(parts, share=opts.get("share", "constants"),
                              stagger=opts.get("stagger"))
    if kind != "builder" or len(recipe) != 4:
        raise ProgramError(f"malformed program recipe: {recipe!r}")
    _, module, builder, kwargs = recipe
    importlib.import_module(module)
    fn = _PROGRAM_BUILDERS.get(builder)
    if fn is None:
        raise ProgramError(
            f"no program builder named {builder!r} registered by module "
            f"{module!r}; call register_program_builder at import time")
    program = fn(**kwargs)
    if program.recipe is None:
        program.recipe = recipe
    return program


# ---------------------------------------------------------------------------
# Multi-program fusion
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MergeInfo:
    """How :func:`merge_programs` renamed each part into the merged graph."""

    #: per-part prefix (``"R0."``, ``"R1."``, ...)
    prefixes: Tuple[str, ...]
    #: per-part mapping of original value name -> merged value name
    value_maps: Tuple[Dict[str, str], ...]
    #: constants deduplicated across parts (shared by array identity)
    shared_constants: int
    #: node-emission stagger used for the interleave
    stagger: int

    @property
    def num_parts(self) -> int:
        return len(self.prefixes)

    def input_name(self, part: int, name: str) -> str:
        return self.value_maps[part][name]

    def output_name(self, part: int, name: str) -> str:
        return self.value_maps[part][name]


def merge_programs(programs: Sequence[Program], share: str = "constants",
                   stagger: Optional[int] = None,
                   name: Optional[str] = None) -> Program:
    """Fuse K independent programs into one wide program graph.

    Part ``i``'s values and nodes are namespaced ``R{i}.``; the parts stay
    *disjoint* subgraphs (no data edges between them), so the planner's
    dependence analysis sees K independent chains and ``ready_steps``
    gains genuine width -- the prerequisite for pipelined / process-pool
    dispatch to overlap anything on chain-shaped models.  With
    ``share="constants"`` (default) constant values referencing the *same
    array object* (weights shared across requests, or across layers) are
    declared once and rebound everywhere; ``share=None`` keeps every
    part's constants separate.

    ``stagger`` controls the node-emission interleave, which -- because
    planning orders steps by emission -- controls how far the parts'
    lifetimes overlap and hence the fused arena size: part ``i``'s node
    ``j`` is emitted at tick ``i * stagger + j``.  ``stagger=1`` runs the
    parts in near-lockstep (maximum width, arena ~ K x one part);
    ``stagger=len(nodes)`` concatenates them (arena ~ one part, no
    steady-state overlap).  The default -- about half a part's length --
    overlaps 2-3 parts at a time, so arena(fused K) stays well below
    K x arena(single) while every part's first step remains immediately
    ready (the planner gives merge roots fresh slabs, see
    ``Program.merge_roots``).

    The same ``Program`` object may appear multiple times (its values are
    only read).  If every part carries a rebuild recipe, the merged
    program gets a ``("merged", ...)`` recipe so it too can be shipped to
    worker processes.
    """
    programs = list(programs)
    if not programs:
        raise ProgramError("merge_programs needs at least one program")
    if share not in (None, False, "constants"):
        raise ProgramError(
            f"unknown share mode {share!r}; expected 'constants' or None")
    for p in programs:
        p.validate()
    max_nodes = max(len(p.nodes) for p in programs)
    if stagger is None:
        stagger = max(1, (max_nodes + 1) // 2)
    stagger = int(stagger)
    if stagger < 1:
        raise ProgramError(f"stagger must be >= 1, got {stagger}")

    merged = Program(name or
                     f"merged[{len(programs)}]({programs[0].name})")
    prefixes = tuple(f"R{i}." for i in range(len(programs)))
    value_maps: List[Dict[str, str]] = [dict() for _ in programs]
    #: id(array) -> merged constant name (cross-part weight sharing)
    const_by_array: Dict[int, str] = {}
    shared_constants = 0
    cross_part_shared = 0
    roots: List[str] = []

    # Declare every part's inputs and constants up front (declaration
    # order does not matter for planning -- only node emission order does).
    for i, part in enumerate(programs):
        for vname, spec in part.values.items():
            if spec.role == ROLE_INPUT:
                new = merged.add_input(prefixes[i] + vname,
                                       layout=spec.layout, shape=spec.shape,
                                       dtype=spec.dtype)
                value_maps[i][vname] = new
                merged.merge_groups[new] = i
            elif spec.role == ROLE_CONSTANT:
                existing = (const_by_array.get(id(spec.array))
                            if share == "constants" else None)
                if existing is not None:
                    value_maps[i][vname] = existing
                    shared_constants += 1
                    if merged.merge_groups.get(existing) != i:
                        cross_part_shared += 1
                    continue
                new = merged.add_constant(prefixes[i] + vname, spec.array)
                value_maps[i][vname] = new
                merged.merge_groups[new] = i
                if share == "constants":
                    const_by_array[id(spec.array)] = new

    # Emit nodes in staggered round-robin order: part i's node j at tick
    # i * stagger + j.  Emission order is topological (each part already
    # is, and parts are disjoint), and the planner's topological order
    # preserves it, so the stagger directly shapes liveness overlap.
    ticks: List[Tuple[int, int]] = []
    for i, part in enumerate(programs):
        for j in range(len(part.nodes)):
            ticks.append((i * stagger + j, i))
    ticks.sort(key=lambda t: (t[0], t[1]))
    cursor = [0] * len(programs)
    for _tick, i in ticks:
        part = programs[i]
        node = part.nodes[cursor[i]]
        cursor[i] += 1
        vmap = value_maps[i]
        for oname in node.outputs:
            spec = part.values[oname]
            new = merged._declare(ValueSpec(
                name=prefixes[i] + oname, layout=spec.layout,
                shape=spec.shape, dtype=spec.dtype))
            vmap[oname] = new
            merged.merge_groups[new] = i
        renamed = dataclasses.replace(
            node,
            name=prefixes[i] + node.name,
            inputs=tuple(vmap[n] for n in node.inputs),
            outputs=tuple(vmap[n] for n in node.outputs),
            elementwise=tuple(vmap[n] for n in node.elementwise))
        if isinstance(node, KernelNode):
            renamed.bindings = {t: vmap[v]
                                for t, v in node.bindings.items()}
        merged._add_node(renamed)
        if cursor[i] == 1:
            # The part's first node: its outputs are the merge roots --
            # the planner gives them fresh slabs so no slab-reuse
            # anti-edge can delay the part's entry step, keeping all K
            # parts in ``ready_steps``.
            roots.extend(vmap[n] for n in node.outputs)

    for i, part in enumerate(programs):
        for oname in part.outputs:
            merged.mark_output(value_maps[i][oname])

    merged.merge_roots = frozenset(roots)
    merged.merge_info = MergeInfo(
        prefixes=prefixes,
        value_maps=tuple(value_maps),
        shared_constants=shared_constants,
        stagger=stagger)
    # The generic merged recipe rebuilds each part from its own recipe and
    # re-merges.  That is only faithful when no constant was deduplicated
    # *across* parts: rebuilding unpickles each part's kwargs separately,
    # so cross-part array identity -- the thing ``share="constants"``
    # keys on -- would not survive and the rebuilt plan would diverge.
    # Programs whose parts share weights should register a dedicated wide
    # builder instead (e.g. the encoder's ``encoder_wide`` builder, which
    # unpickles the weights once and shares the one object across parts).
    if (all(p.recipe is not None for p in programs)
            and cross_part_shared == 0):
        merged.recipe = ("merged", {
            "parts": [p.recipe for p in programs],
            "share": share, "stagger": stagger})
    return merged
