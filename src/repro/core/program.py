"""The ragged program graph IR.

CoRa's core insight (I1) is that raggedness is known *before* execution:
the auxiliary work of a whole model can be hoisted out of the kernels and
shared.  This module lifts that insight from single operators to whole
programs.  A :class:`Program` is a directed acyclic graph whose nodes are
scheduled ragged operators and whose edges are ragged tensor *values*:

* a :class:`KernelNode` wraps a :class:`~repro.core.schedule.Schedule` and
  is lowered / code-generated through the executor's
  :class:`~repro.core.codegen.CodegenBackend` machinery exactly like an
  op-by-op ``build_and_run`` call would be;
* a :class:`HostNode` wraps a host-side NumPy function (packed gemms,
  layout marshalling, layer normalisation) that writes its result into a
  pre-planned output buffer.

Because every value's layout is fixed once the mini-batch's raggedness
signature is known, the :mod:`~repro.core.planner` can topologically order
the graph, run liveness analysis, and assign every intermediate value into
a reusable arena slab before anything executes; the
:class:`~repro.core.session.Session` then compiles the whole program ahead
of time and replays it with a single flat dispatch loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import CoraError
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout


class ProgramError(CoraError):
    """Raised for malformed program graphs (unknown values, cycles, ...)."""


#: Value roles.  ``input`` values are bound at ``Session.run`` time,
#: ``constant`` values carry an array fixed at program-construction time
#: (weights, mask matrices), ``intermediate`` values are produced by nodes
#: and live in the planned arena.
ROLE_INPUT = "input"
ROLE_CONSTANT = "constant"
ROLE_INTERMEDIATE = "intermediate"


@dataclass
class ValueSpec:
    """One edge of the program graph: a ragged or dense tensor value.

    A *ragged* value carries a :class:`RaggedLayout` and materialises as a
    :class:`~repro.core.ragged_tensor.RaggedTensor` over a flat buffer; a
    *dense* value carries a plain shape (e.g. the packed ``(tokens,
    hidden)`` matrix of a fused-vloop projection).
    """

    name: str
    layout: Optional[RaggedLayout] = None
    shape: Optional[Tuple[int, ...]] = None
    dtype: np.dtype = np.float32
    role: str = ROLE_INTERMEDIATE
    #: the fixed array of a constant value
    array: Optional[np.ndarray] = None
    #: graph structure, filled in by :class:`Program`
    producer: Optional[int] = None
    consumers: List[int] = field(default_factory=list)

    @property
    def is_ragged(self) -> bool:
        return self.layout is not None

    @property
    def num_elements(self) -> int:
        if self.layout is not None:
            return int(self.layout.total_size())
        size = 1
        for s in self.shape or ():
            size *= int(s)
        return size

    @property
    def nbytes(self) -> int:
        return self.num_elements * np.dtype(self.dtype).itemsize


@dataclass
class ProgramNode:
    """Base class of program-graph nodes.

    ``elementwise`` names the inputs each output element depends on only
    pointwise: the node's (single) output may safely alias any of those
    inputs' buffers -- the planner uses this to schedule provably-safe
    in-place updates that share the input's arena slab instead of double
    buffering.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    elementwise: Tuple[str, ...] = ()

    @property
    def kind(self) -> str:
        return "node"


@dataclass
class KernelNode(ProgramNode):
    """A scheduled ragged operator, compiled through the codegen backend.

    ``bindings`` maps the schedule's input-tensor names to program value
    names; the single output value's layout is declared up front (it is
    validated against the compiled kernel's output plan at session-compile
    time).
    """

    schedule: Schedule = None
    bindings: Dict[str, str] = field(default_factory=dict)
    input_layouts: Optional[Dict[str, RaggedLayout]] = None

    @property
    def kind(self) -> str:
        return "kernel"


@dataclass
class HostNode(ProgramNode):
    """A host-side NumPy step writing into pre-planned output buffers.

    ``fn`` is called as ``fn(*outputs, *inputs)`` where each output is the
    materialised value (a :class:`~repro.core.ragged_tensor.RaggedTensor`
    for ragged values, a shaped ``ndarray`` view for dense values) backed
    by its planned arena buffer.  With ``fills_output=True`` the function
    promises to overwrite every element of each output, so the dispatcher
    can skip the pre-zeroing pass.
    """

    fn: Callable = None
    fills_output: bool = True

    @property
    def kind(self) -> str:
        return "host"


_PROGRAM_UIDS = iter(range(1, 1 << 62))


class Program:
    """A ragged program graph, built once per raggedness signature.

    Nodes are appended in execution (hence topological) order through
    :meth:`add_kernel` / :meth:`add_host`; values are declared through
    :meth:`add_input` / :meth:`add_constant` or implicitly as node
    outputs.  :meth:`mark_output` selects the values ``Session.run``
    returns.
    """

    def __init__(self, name: str):
        self.name = name
        self.uid = next(_PROGRAM_UIDS)
        self.values: Dict[str, ValueSpec] = {}
        self.nodes: List[ProgramNode] = []
        self.outputs: List[str] = []

    # -- value declaration ---------------------------------------------------

    def _declare(self, spec: ValueSpec) -> str:
        if spec.name in self.values:
            raise ProgramError(
                f"value {spec.name!r} already declared in program {self.name!r}")
        if (spec.layout is None) == (spec.shape is None):
            raise ProgramError(
                f"value {spec.name!r} must have exactly one of layout / shape")
        self.values[spec.name] = spec
        return spec.name

    def add_input(self, name: str, layout: Optional[RaggedLayout] = None,
                  shape: Optional[Sequence[int]] = None,
                  dtype: np.dtype = np.float32) -> str:
        """Declare a value bound by the caller at ``Session.run`` time."""
        return self._declare(ValueSpec(
            name=name, layout=layout,
            shape=None if shape is None else tuple(int(s) for s in shape),
            dtype=np.dtype(dtype), role=ROLE_INPUT))

    def add_constant(self, name: str, array: np.ndarray) -> str:
        """Declare a value fixed at program-construction time (weights).

        The array is referenced, not copied -- treat it as immutable for
        the lifetime of the program.
        """
        array = np.asarray(array)
        return self._declare(ValueSpec(
            name=name, shape=tuple(array.shape), dtype=array.dtype,
            role=ROLE_CONSTANT, array=array))

    # -- node construction -----------------------------------------------------

    def _check_inputs(self, node_name: str, names: Sequence[str]) -> None:
        for n in names:
            if n not in self.values:
                raise ProgramError(
                    f"node {node_name!r} reads undeclared value {n!r}")

    def _add_node(self, node: ProgramNode) -> None:
        index = len(self.nodes)
        self.nodes.append(node)
        for n in node.inputs:
            self.values[n].consumers.append(index)
        for n in node.outputs:
            self.values[n].producer = index

    def add_kernel(self, name: str, schedule: Schedule,
                   bindings: Dict[str, str], output_layout: RaggedLayout,
                   out: Optional[str] = None,
                   input_layouts: Optional[Dict[str, RaggedLayout]] = None,
                   ) -> str:
        """Append a scheduled-operator node; returns its output value name."""
        self._check_inputs(name, list(bindings.values()))
        out = out or name
        self._declare(ValueSpec(name=out, layout=output_layout))
        self._add_node(KernelNode(
            name=name, inputs=tuple(bindings.values()), outputs=(out,),
            schedule=schedule, bindings=dict(bindings),
            input_layouts=input_layouts))
        return out

    def add_host(self, name: str, fn: Callable, inputs: Sequence[str],
                 output_layouts: Optional[Dict[str, RaggedLayout]] = None,
                 output_shapes: Optional[Dict[str, Sequence[int]]] = None,
                 fills_output: bool = True,
                 elementwise: Optional[Sequence[str]] = None,
                 ) -> Tuple[str, ...]:
        """Append a host-side step; returns its output value names.

        Outputs are declared through ``output_layouts`` (ragged) and/or
        ``output_shapes`` (dense); ``fn`` receives them first, in
        declaration order, followed by the materialised inputs.

        ``elementwise`` names inputs the output depends on only pointwise
        (``out[i] = f(in[i], ...)``): the planner may then alias the
        output onto one of those inputs' arena slabs (in-place update)
        when that input is otherwise dead.  Requires a single output of
        the same element count as each named input, and
        ``fills_output=True`` (a pre-zeroing pass would clobber the
        aliased input before ``fn`` reads it).
        """
        self._check_inputs(name, inputs)
        out_names: List[str] = []
        for out, layout in (output_layouts or {}).items():
            self._declare(ValueSpec(name=out, layout=layout))
            out_names.append(out)
        for out, shape in (output_shapes or {}).items():
            self._declare(ValueSpec(
                name=out, shape=tuple(int(s) for s in shape)))
            out_names.append(out)
        if not out_names:
            raise ProgramError(f"host node {name!r} declares no outputs")
        elementwise = tuple(elementwise or ())
        if elementwise:
            if len(out_names) != 1:
                raise ProgramError(
                    f"host node {name!r}: elementwise (in-place-safe) nodes "
                    f"must have exactly one output, got {len(out_names)}")
            if not fills_output:
                raise ProgramError(
                    f"host node {name!r}: elementwise nodes require "
                    "fills_output=True (pre-zeroing would clobber the "
                    "aliased input)")
            out_elements = self.values[out_names[0]].num_elements
            for n in elementwise:
                if n not in inputs:
                    raise ProgramError(
                        f"host node {name!r}: elementwise input {n!r} is "
                        f"not among the node's inputs {list(inputs)}")
                if self.values[n].num_elements != out_elements:
                    raise ProgramError(
                        f"host node {name!r}: elementwise input {n!r} has "
                        f"{self.values[n].num_elements} elements but the "
                        f"output has {out_elements}")
        self._add_node(HostNode(
            name=name, inputs=tuple(inputs), outputs=tuple(out_names),
            fn=fn, fills_output=fills_output, elementwise=elementwise))
        return tuple(out_names)

    def mark_output(self, *names: str) -> None:
        """Select the values returned by ``Session.run``."""
        for n in names:
            if n not in self.values:
                raise ProgramError(f"unknown output value {n!r}")
            if self.values[n].role != ROLE_INTERMEDIATE:
                raise ProgramError(
                    f"output {n!r} must be produced by a node, not a "
                    f"{self.values[n].role}")
            if n not in self.outputs:
                self.outputs.append(n)

    def dense_shape_of(self, name: str) -> Tuple[int, ...]:
        """The shape of a dense value; a clear error for ragged values.

        Node builders over packed (dense) values use this so binding a
        ragged value fails with a :class:`ProgramError` naming the value
        instead of an opaque ``TypeError``.
        """
        if name not in self.values:
            raise ProgramError(f"unknown value {name!r}")
        spec = self.values[name]
        if spec.shape is None:
            raise ProgramError(
                f"value {name!r} is ragged; this node requires a dense "
                "(packed) value")
        return spec.shape

    # -- introspection ----------------------------------------------------------

    @property
    def kernel_nodes(self) -> List[KernelNode]:
        return [n for n in self.nodes if isinstance(n, KernelNode)]

    @property
    def host_nodes(self) -> List[HostNode]:
        return [n for n in self.nodes if isinstance(n, HostNode)]

    def intermediates(self) -> List[ValueSpec]:
        """Values produced by nodes (the arena-planned set)."""
        return [v for v in self.values.values()
                if v.role == ROLE_INTERMEDIATE]

    def input_values(self) -> List[ValueSpec]:
        return [v for v in self.values.values() if v.role == ROLE_INPUT]

    def validate(self) -> None:
        """Check graph well-formedness (producers exist, outputs marked)."""
        if not self.outputs:
            raise ProgramError(f"program {self.name!r} has no marked outputs")
        for v in self.values.values():
            if v.role == ROLE_INTERMEDIATE and v.producer is None:
                raise ProgramError(
                    f"intermediate value {v.name!r} has no producer")

    def __repr__(self) -> str:
        return (f"Program({self.name!r}, nodes={len(self.nodes)}, "
                f"values={len(self.values)}, outputs={self.outputs})")
