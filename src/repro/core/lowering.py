"""Lowering: from a scheduled ragged operator to a concrete loop nest.

Lowering applies the recorded scheduling transformations, materialises every
(possibly variable) loop bound into either a constant or a *bound table*
indexed by the governing loop variable, decides which auxiliary arrays the
prelude must provide (bound tables, fusion maps, storage row-offset arrays,
thread-remap permutations), and packages everything into a
:class:`LoweredKernel` that the code generator consumes.

The output is intentionally concrete: "extent of loop ``i`` is
``aux['len_seq'][b]``" rather than a symbolic uninterpreted function --
mirroring how CoRa's generated code indexes prelude-built arrays at run time
(paper Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dims import Dim, FusedDim
from repro.core.errors import LoweringError
from repro.core.extents import ConstExtent, Extent, PaddedExtent, VarExtent, ceil_to
from repro.core.ir import (
    Annotation,
    Expr,
    LoopKind,
    Reduce,
    ReduceAxis,
    TensorSpec,
    reductions_in,
    tensor_reads,
)
from repro.core.operator import RaggedOperator
from repro.core.prelude import build_fusion_maps
from repro.core.schedule import FuseInfo, Schedule, SplitInfo
from repro.core.storage import RaggedLayout


# ---------------------------------------------------------------------------
# Bound specifications
# ---------------------------------------------------------------------------


@dataclass
class BoundSpec:
    """A concrete loop bound: either a constant or a per-governing-index table."""

    kind: str  # "const" | "table"
    value: int = 0
    table_name: str = ""
    governing: Optional[Dim] = None

    @classmethod
    def const(cls, value: int) -> "BoundSpec":
        return cls(kind="const", value=int(value))

    @classmethod
    def table(cls, name: str, governing: Dim) -> "BoundSpec":
        return cls(kind="table", table_name=name, governing=governing)

    @property
    def is_const(self) -> bool:
        return self.kind == "const"


@dataclass
class FusionSpec:
    """Codegen information for a fused loop."""

    map_name: str
    outer_dim: Dim
    inner_dim: Dim


@dataclass
class GuardSpec:
    """A bound check for the inner loop of a split vloop."""

    outer_var_dim: Dim
    inner_var_dim: Dim
    factor: int
    bound: BoundSpec


@dataclass
class SplitLink:
    """Ties a split-derived loop back to its original dimension.

    Both loops of a split pair carry a link (``role`` distinguishes them),
    so a backend can recognise the pair and, e.g., collapse it back into
    the original iteration domain (the vector backend vectorizes guarded
    split loops exactly this way).
    """

    original: Dim
    outer: Dim
    inner: Dim
    factor: int
    role: str  # "outer" | "inner"


@dataclass
class LoopSpec:
    """One loop of the lowered kernel, ready for code generation."""

    dim: Dim
    var: str
    bound: BoundSpec
    kind: LoopKind
    annotation: Annotation = Annotation.NONE
    guard: Optional[GuardSpec] = None
    fusion: Optional[FusionSpec] = None
    remap_name: Optional[str] = None
    split: Optional[SplitLink] = None


@dataclass
class TensorPlan:
    """How accesses to one tensor are lowered to flat-buffer offsets."""

    spec: TensorSpec
    layout: RaggedLayout
    #: aux array names for ragged layouts.  The scalar backend addresses
    #: elements through ``row_name``/``stride_name``; the vector backend
    #: additionally uses ``shape_name`` (the per-instance storage shapes) to
    #: view whole slices at once.
    row_name: str = ""
    stride_name: str = ""
    shape_name: str = ""
    #: constant strides for dense layouts.
    dense_strides: Tuple[int, ...] = ()

    @property
    def is_ragged(self) -> bool:
        return self.layout.is_ragged


@dataclass
class LoweredKernel:
    """Everything the code generator and executor need for one operator."""

    name: str
    loops: List[LoopSpec]
    body: Expr
    output_plan: TensorPlan
    output_dims: Tuple[Dim, ...]
    input_plans: Dict[str, TensorPlan]
    #: mapping original dim -> how to recover its value from loop variables
    #: ("loop", var) | ("split", outer_var, inner_var, factor) |
    #: ("fused_outer"/"fused_inner", map_name, fused_var)
    dim_recovery: Dict[Dim, Tuple] = field(default_factory=dict)
    #: aux arrays the executor must provide: name -> numpy array
    aux_arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    #: reduction axes with materialised bound specs
    reduction_bounds: Dict[Dim, BoundSpec] = field(default_factory=dict)
    #: whether to hoist aux-array loads out of inner loops
    hoist_loads: bool = True
    #: output storage dims are fused into a single flat dim
    output_dims_fused: bool = False

    def loop_vars(self) -> List[str]:
        return [l.var for l in self.loops]


# ---------------------------------------------------------------------------
# Extent materialisation
# ---------------------------------------------------------------------------


def _governing_extent_of(op: RaggedOperator) -> int:
    ext = op.loop_extents[0]
    if not ext.is_constant:
        raise LoweringError("the outermost loop must have a constant bound")
    return int(ext())


def materialise_extent(ext: Extent, gov_count: int) -> Tuple[str, Union[int, np.ndarray], Optional[Dim]]:
    """Evaluate an extent into a constant or a bound table.

    Returns ``("const", value, None)`` or ``("table", array, governing_dim)``.
    """
    if ext.is_constant:
        return ("const", int(ext()), None)
    governing = ext.deps[0]
    idx = np.arange(gov_count, dtype=np.int64)
    table = np.asarray(ext(idx), dtype=np.int64)
    return ("table", table, governing)


# ---------------------------------------------------------------------------
# Main lowering routine
# ---------------------------------------------------------------------------


def lower_schedule(
    schedule: Schedule,
    input_layouts: Optional[Dict[str, RaggedLayout]] = None,
) -> LoweredKernel:
    """Lower a scheduled operator into a :class:`LoweredKernel`.

    Parameters
    ----------
    schedule:
        The schedule to lower.
    input_layouts:
        Optional explicit layouts for the input tensors.  By default each
        input uses the layout implied by its declared extents plus any
        input storage padding recorded on the schedule.
    """
    op = schedule.operator
    gov_count = _governing_extent_of(op)
    aux: Dict[str, np.ndarray] = {}

    base_extents = dict(zip(op.dims, op.loop_extents))
    split_by_outer = {s.outer: s for s in schedule.splits}
    split_by_inner = {s.inner: s for s in schedule.splits}
    fuse_by_fused = {f.fused: f for f in schedule.fusions}

    def padded_loop_extent(dim: Dim) -> Extent:
        ext = base_extents[dim]
        pad = schedule.loop_padding.get(dim, 1)
        return ext.padded(pad)

    def register_table(name: str, table: np.ndarray) -> str:
        aux[name] = np.asarray(table, dtype=np.int64)
        return name

    # ---- build loop specs -------------------------------------------------
    loops: List[LoopSpec] = []
    dim_recovery: Dict[Dim, Tuple] = {}
    var_names: Dict[Dim, str] = {}

    def var_of(dim: Dim) -> str:
        if dim not in var_names:
            base = dim.name.replace(".", "_").replace("-", "_")
            var_names[dim] = f"_{base}"
        return var_names[dim]

    for dim in schedule.loop_order:
        ann = schedule.annotations.get(dim, Annotation.NONE)
        remap_name = None
        for remap in schedule.remaps:
            if remap.dim is dim:
                remap_name = f"remap_{dim.name}"
        if dim in fuse_by_fused:
            fuse = fuse_by_fused[dim]
            inner_ext = padded_loop_extent(fuse.inner)
            kind_, value, governing = materialise_extent(inner_ext, gov_count)
            if kind_ == "const":
                lengths = np.full(gov_count, value, dtype=np.int64)
            else:
                lengths = value
            maps = build_fusion_maps(lengths, pad=1)
            map_name = f"fuse_{fuse.outer.name}_{fuse.inner.name}"
            register_table(f"{map_name}_ffo", maps.ffo)
            register_table(f"{map_name}_ffi", maps.ffi)
            register_table(f"{map_name}_row", maps.foif_row)
            bound = BoundSpec.const(maps.fused_extent)
            spec = LoopSpec(
                dim=dim, var=var_of(dim), bound=bound, kind=LoopKind.FUSED,
                annotation=ann,
                fusion=FusionSpec(map_name=map_name, outer_dim=fuse.outer,
                                  inner_dim=fuse.inner),
                remap_name=remap_name,
            )
            loops.append(spec)
            dim_recovery[fuse.outer] = ("fused_outer", map_name, var_of(dim))
            dim_recovery[fuse.inner] = ("fused_inner", map_name, var_of(dim))
            continue

        if dim in split_by_outer:
            split = split_by_outer[dim]
            orig_ext = padded_loop_extent(split.original)
            kind_, value, governing = materialise_extent(orig_ext, gov_count)
            if kind_ == "const":
                bound = BoundSpec.const((value + split.factor - 1) // split.factor)
                loop_kind = LoopKind.CONSTANT
            else:
                tiles = (value + split.factor - 1) // split.factor
                name = register_table(f"tiles_{split.original.name}", tiles)
                bound = BoundSpec.table(name, governing)
                loop_kind = LoopKind.VARIABLE
            loops.append(LoopSpec(dim=dim, var=var_of(dim), bound=bound,
                                  kind=loop_kind, annotation=ann,
                                  remap_name=remap_name,
                                  split=SplitLink(original=split.original,
                                                  outer=split.outer,
                                                  inner=split.inner,
                                                  factor=split.factor,
                                                  role="outer")))
            continue

        if dim in split_by_inner:
            split = split_by_inner[dim]
            orig_ext = padded_loop_extent(split.original)
            bound = BoundSpec.const(split.factor)
            guard: Optional[GuardSpec] = None
            pad = schedule.loop_padding.get(split.original, 1)
            kind_, value, governing = materialise_extent(orig_ext, gov_count)
            needs_guard = True
            if kind_ == "const" and value % split.factor == 0:
                needs_guard = False
            if pad % split.factor == 0 and pad >= split.factor:
                needs_guard = False
            if needs_guard:
                if kind_ == "const":
                    guard_bound = BoundSpec.const(value)
                else:
                    name = register_table(f"len_{split.original.name}", value)
                    guard_bound = BoundSpec.table(name, governing)
                guard = GuardSpec(outer_var_dim=split.outer,
                                  inner_var_dim=split.inner,
                                  factor=split.factor, bound=guard_bound)
            loops.append(LoopSpec(dim=dim, var=var_of(dim), bound=bound,
                                  kind=LoopKind.CONSTANT, annotation=ann,
                                  guard=guard, remap_name=remap_name,
                                  split=SplitLink(original=split.original,
                                                  outer=split.outer,
                                                  inner=split.inner,
                                                  factor=split.factor,
                                                  role="inner")))
            dim_recovery[split.original] = (
                "split", var_of(split.outer), var_of(split.inner), split.factor
            )
            continue

        # An original, untransformed loop.
        ext = padded_loop_extent(dim)
        kind_, value, governing = materialise_extent(ext, gov_count)
        if kind_ == "const":
            bound = BoundSpec.const(value)
            loop_kind = LoopKind.CONSTANT
        else:
            name = register_table(f"len_{dim.name}", value)
            bound = BoundSpec.table(name, governing)
            loop_kind = LoopKind.VARIABLE
        loops.append(LoopSpec(dim=dim, var=var_of(dim), bound=bound,
                              kind=loop_kind, annotation=ann,
                              remap_name=remap_name))
        dim_recovery[dim] = ("loop", var_of(dim))

    # ---- thread remapping permutations -------------------------------------
    for remap in schedule.remaps:
        loop = next((l for l in loops if l.dim is remap.dim), None)
        if loop is None:
            raise LoweringError(f"thread remap refers to unknown loop {remap.dim.name}")
        # Workload of each iteration: total inner work governed by it if any
        # vloop depends on this dim, else uniform.
        workloads = np.ones(
            loop.bound.value if loop.bound.is_const else aux[loop.bound.table_name].size,
            dtype=np.int64,
        )
        for d, ext in base_extents.items():
            if ext.deps and ext.deps[0] is remap.dim:
                kind_, value, _ = materialise_extent(ext, gov_count)
                if kind_ == "table":
                    workloads = workloads * value
        perm = remap.permutation(workloads)
        aux[f"remap_{remap.dim.name}"] = perm

    # ---- reduction bounds ---------------------------------------------------
    reduction_bounds: Dict[Dim, BoundSpec] = {}
    for red in reductions_in(op.body):
        for axis in red.axes:
            kind_, value, governing = materialise_extent(axis.extent, gov_count)
            if kind_ == "const":
                reduction_bounds[axis.dim] = BoundSpec.const(value)
            else:
                name = register_table(f"rlen_{axis.dim.name}", value)
                reduction_bounds[axis.dim] = BoundSpec.table(name, governing)

    # ---- tensor plans --------------------------------------------------------
    input_layouts = dict(input_layouts or {})

    def plan_for(spec: TensorSpec, layout: RaggedLayout, prefix: str) -> TensorPlan:
        if layout.is_ragged:
            layout_aux = layout.build_aux()
            row_name = f"{prefix}_{spec.name}_row"
            stride_name = f"{prefix}_{spec.name}_strides"
            shape_name = f"{prefix}_{spec.name}_shapes"
            aux[row_name] = layout_aux.row_offsets
            aux[stride_name] = layout_aux.slice_strides
            aux[shape_name] = layout_aux.slice_shapes
            return TensorPlan(spec=spec, layout=layout, row_name=row_name,
                              stride_name=stride_name, shape_name=shape_name)
        shape = layout.dense_shape()
        strides = [1] * len(shape)
        for i in range(len(shape) - 2, -1, -1):
            strides[i] = strides[i + 1] * shape[i + 1]
        return TensorPlan(spec=spec, layout=layout,
                          dense_strides=tuple(strides))

    # Output layout: storage extents + storage padding (+ dim fusion).
    output_layout = RaggedLayout(op.dims, op.storage_extents,
                                 storage_padding=dict(schedule.storage_padding))
    output_dims_fused = False
    if schedule.dim_fusions:
        outer_d, inner_d = schedule.dim_fusions[0]
        output_layout = output_layout.fuse_dims(outer_d, inner_d)
        output_dims_fused = True
    output_plan = plan_for(op.output, output_layout, "out")

    input_plans: Dict[str, TensorPlan] = {}
    for spec in op.inputs:
        if spec.name in input_layouts:
            layout = input_layouts[spec.name]
        else:
            padding = schedule.input_storage_padding.get(spec.name)
            layout = RaggedLayout(spec.dims, spec.extents, storage_padding=padding)
        input_plans[spec.name] = plan_for(spec, layout, "in")

    return LoweredKernel(
        name=op.name,
        loops=loops,
        body=op.body,
        output_plan=output_plan,
        output_dims=op.dims,
        input_plans=input_plans,
        dim_recovery=dim_recovery,
        aux_arrays=aux,
        reduction_bounds=reduction_bounds,
        hoist_loads=schedule.hoist_loads,
        output_dims_fused=output_dims_fused,
    )
