"""Planner-level kernel fusion: collapse producer-consumer node chains.

The compiled encoder still pays one dispatch per operator with an arena
round-trip between every producer-consumer pair -- exactly the overhead
the source paper argues a ragged-tensor compiler should fuse away, and
the per-step IPC cost that kept the process-pool engine from harvesting
its width.  :func:`fuse_program` rewrites a :class:`Program` graph so
that maximal runs of *consecutive same-kind* nodes (all-kernel or
all-host, never across merge groups) become single fused nodes:

* a run of :class:`KernelNode`\\ s (e.g. the masked softmax chain
  ``addmask -> max -> exp -> sum -> div``) becomes one
  :class:`FusedKernelNode`, which the executor either emits as *one*
  vector kernel sharing a single gather/scatter
  (:func:`repro.core.codegen_vector.generate_fused_kernel`) or, when
  any member resists vector emission, runs as a grouped dispatch that
  is bit-identical to the unfused chain by construction;
* a run of :class:`HostNode`\\ s (projections, residual adds, layer
  norms) becomes one :class:`FusedHostNode` executed as a single step.

The legality rule for *internalising* an intermediate value -- making
it a kernel-local (or fused-step-local) temporary whose arena slab
disappears from the plan -- is that its producer and **all** of its
consumers lie inside the region and it is not a program output.
Values with any external reader survive as outputs of the fused node.

Fusion never reorders work: regions are contiguous runs of the
original (topological) node order and members execute in that order
inside the fused step, so the rewrite is bit-identical by
construction.  Merge groups (``merge_programs``) are respected as
region boundaries so a wide K-request program keeps its K independent
chains and the engines keep their width.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.program import (
    HostNode,
    KernelNode,
    Program,
    ProgramNode,
    ROLE_CONSTANT,
    ROLE_INPUT,
    ValueSpec,
)


@dataclass
class FusedKernelNode(ProgramNode):
    """A contiguous run of kernel nodes executed as one dispatch.

    ``members`` are the original :class:`KernelNode`\\ s in execution
    order; ``internal_specs`` are the value specs of the intermediates
    that became fused-local temporaries (their names no longer exist in
    the rewritten program).  Deliberately *not* a :class:`KernelNode`
    subclass so ``Program.kernel_nodes`` keeps counting unfused kernels.
    """

    members: Tuple[KernelNode, ...] = ()
    internal_specs: Tuple[ValueSpec, ...] = ()

    @property
    def kind(self) -> str:
        return "fused-kernel"


@dataclass
class FusedHostNode(ProgramNode):
    """A contiguous run of host nodes executed as one step.

    Member functions run in order inside the fused step; internalised
    intermediates live in private step-local buffers instead of arena
    slabs.  Per-member ``fills_output`` semantics are preserved by the
    fused closure the session builds.
    """

    members: Tuple[HostNode, ...] = ()
    internal_specs: Tuple[ValueSpec, ...] = ()

    @property
    def kind(self) -> str:
        return "fused-host"


@dataclass
class FusionReport:
    """What :func:`fuse_program` did to a program graph."""

    regions: int = 0
    fused_kernels: int = 0
    fused_hosts: int = 0
    #: member nodes swallowed into fused nodes (sum of region sizes)
    nodes_fused: int = 0
    #: intermediates turned into fused-local temporaries
    values_internalized: int = 0
    #: steps removed from the dispatch loop: sum of (len(region) - 1)
    dispatches_eliminated: int = 0
    #: names of the internalised values (their slabs left the plan)
    internalized: Tuple[str, ...] = ()
    region_sizes: Tuple[int, ...] = ()

    def summary(self) -> Dict[str, object]:
        return {
            "regions": self.regions,
            "fused_kernels": self.fused_kernels,
            "fused_hosts": self.fused_hosts,
            "nodes_fused": self.nodes_fused,
            "values_internalized": self.values_internalized,
            "dispatches_eliminated": self.dispatches_eliminated,
            "region_sizes": list(self.region_sizes),
        }


def _fusable_runs(program: Program) -> List[Tuple[str, List[int]]]:
    """Maximal runs of consecutive same-kind, same-merge-group nodes.

    Returns ``(kind, node_indices)`` for every run; only runs of length
    >= 2 are fusion regions.  Merge-group boundaries split runs so wide
    (K-request) programs keep K independent chains.
    """
    runs: List[Tuple[str, List[int]]] = []
    prev_key = None
    for idx, node in enumerate(program.nodes):
        if isinstance(node, KernelNode):
            kind = "kernel"
        elif isinstance(node, HostNode):
            kind = "host"
        else:  # already fused, or a foreign node kind: never re-fuse
            kind = f"other:{idx}"
        group = program.merge_groups.get(node.outputs[0])
        key = (kind, group)
        if key == prev_key and runs:
            runs[-1][1].append(idx)
        else:
            runs.append((kind, [idx]))
            prev_key = key
    return runs


def _region_node(program: Program, indices: List[int],
                 kind: str) -> Tuple[ProgramNode, List[str]]:
    """Build the fused node for one region; returns it plus the names of
    the internalised values."""
    members = tuple(program.nodes[i] for i in indices)
    region = set(indices)
    produced: List[str] = []
    for m in members:
        produced.extend(m.outputs)
    produced_set = set(produced)

    internal: List[str] = []
    external_out: List[str] = []
    for name in produced:
        spec = program.values[name]
        outside = [c for c in spec.consumers if c not in region]
        if not outside and name not in program.outputs:
            internal.append(name)
        else:
            external_out.append(name)

    inputs: List[str] = []
    for m in members:
        for name in m.inputs:
            if name not in produced_set and name not in inputs:
                inputs.append(name)

    internal_specs = tuple(
        dataclasses.replace(program.values[n], producer=None, consumers=[])
        for n in internal)
    cls = FusedKernelNode if kind == "kernel" else FusedHostNode
    node = cls(
        name="fused(" + "+".join(m.name for m in members) + ")",
        inputs=tuple(inputs),
        outputs=tuple(external_out),
        members=members,
        internal_specs=internal_specs)
    return node, internal


def fuse_program(program: Program,
                 ) -> Tuple[Optional[Program], FusionReport]:
    """Rewrite ``program`` with fusable regions collapsed.

    Returns ``(fused_program, report)``; ``fused_program`` is ``None``
    (and the report all-zero) when no region of length >= 2 exists.
    The rewritten program preserves input / constant / surviving-value
    names and the marked outputs, so it is a drop-in execution plan for
    the original -- callers keep addressing the *original* program (the
    session caches by its uid and engines ship its recipe).
    """
    program.validate()
    runs = _fusable_runs(program)
    report = FusionReport()
    if not any(len(idx) >= 2 for _, idx in runs):
        return None, report

    fused = Program(program.name)
    fused.recipe = None  # engines rebuild the original and re-fuse

    for spec in program.values.values():
        if spec.role in (ROLE_INPUT, ROLE_CONSTANT):
            fused._declare(dataclasses.replace(
                spec, producer=None, consumers=[]))

    internalized: List[str] = []
    region_sizes: List[int] = []
    # original node index -> fused-program node index (for merge roots)
    node_map: Dict[int, int] = {}
    for kind, indices in runs:
        if len(indices) < 2 or kind not in ("kernel", "host"):
            for i in indices:
                node = program.nodes[i]
                for oname in node.outputs:
                    fused._declare(dataclasses.replace(
                        program.values[oname], producer=None, consumers=[]))
                node_map[i] = len(fused.nodes)
                fused._add_node(node)
            continue
        node, internal = _region_node(program, indices, kind)
        for oname in node.outputs:
            fused._declare(dataclasses.replace(
                program.values[oname], producer=None, consumers=[]))
        for i in indices:
            node_map[i] = len(fused.nodes)
        fused._add_node(node)
        internalized.extend(internal)
        region_sizes.append(len(indices))
        report.regions += 1
        report.nodes_fused += len(indices)
        report.dispatches_eliminated += len(indices) - 1
        if kind == "kernel":
            report.fused_kernels += 1
        else:
            report.fused_hosts += 1

    fused.mark_output(*program.outputs)

    # Merge metadata: groups carry over for surviving values; a root
    # that was internalised is replaced by its fused node's outputs so
    # the planner still gives each part's entry step a fresh slab.
    if program.merge_groups:
        for name in fused.values:
            group = program.merge_groups.get(name)
            if group is not None:
                fused.merge_groups[name] = group
    if program.merge_roots:
        roots: List[str] = []
        for name in program.merge_roots:
            if name in fused.values:
                roots.append(name)
            else:
                producer = program.values[name].producer
                node = fused.nodes[node_map[producer]]
                roots.extend(node.outputs)
        fused.merge_roots = frozenset(roots)

    report.values_internalized = len(internalized)
    report.internalized = tuple(internalized)
    report.region_sizes = tuple(region_sizes)
    return fused, report
