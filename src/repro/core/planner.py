"""Program planning: topological ordering, liveness, arena assignment.

Given a :class:`~repro.core.program.Program` whose raggedness signature is
fixed, every intermediate value's byte size is known before execution
(insight I1 of the paper: raggedness is known up front).  The planner
exploits that to replace per-op output allocation with a small set of
reusable arena *slabs*:

1. :func:`topological_order` orders the nodes (Kahn's algorithm, stable in
   insertion order -- programs built through the ``Program`` API are
   already topological, but the planner does not rely on it);
2. liveness analysis computes, for every intermediate value, the half-open
   interval of node steps during which its buffer must exist: from its
   producing step to its last consuming step (program outputs stay live to
   the end of the program);
3. a greedy best-fit allocator assigns each value to a slab.  A node's
   output is assigned *while its inputs are still live*, so a value never
   aliases the buffers its producer reads -- overlapping producer/consumer
   lifetimes are automatically double-buffered into distinct slabs; slabs
   are recycled only once their occupant's last consumer has executed.

The resulting :class:`ProgramPlan` records the slab sizes, the per-value
assignment and the peak arena bytes, alongside the bytes a per-op
allocator would have touched -- the number the memory model and the
program-runtime benchmark report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.program import (
    Program,
    ProgramError,
    ROLE_INTERMEDIATE,
)


@dataclass
class ProgramPlan:
    """The execution plan of one program: order, liveness, arena layout."""

    #: node indices in execution order
    order: List[int]
    #: value name -> (birth step, death step); steps index into ``order``.
    #: A value is live on ``[birth, death]`` inclusive.
    liveness: Dict[str, Tuple[int, int]]
    #: value name -> arena slab index
    slab_of: Dict[str, int]
    #: per-slab capacity in elements
    slab_elements: List[int]
    #: per-value element counts used for planning
    value_elements: Dict[str, int]
    #: bytes per element (float32 throughout the numeric path)
    itemsize: int = 4

    @property
    def arena_bytes(self) -> int:
        """Peak intermediate bytes under arena reuse (sum of slab sizes)."""
        return int(sum(self.slab_elements)) * self.itemsize

    @property
    def naive_bytes(self) -> int:
        """Bytes a per-op allocator would allocate (one buffer per value)."""
        return int(sum(self.value_elements.values())) * self.itemsize

    @property
    def peak_live_bytes(self) -> int:
        """Max bytes simultaneously live at any step (liveness lower bound).

        No allocator can beat this; ``arena_bytes`` is what the greedy
        best-fit packing actually reserves (>= this, since slabs are
        sized/grown conservatively).  For an N-layer stacked program this
        stays near one layer's working set -- the number the cross-layer
        reuse regression pins down.
        """
        if not self.liveness:
            return 0
        steps = len(self.order)
        live = np.zeros(steps, dtype=np.int64)
        for name, (birth, death) in self.liveness.items():
            live[birth:death + 1] += self.value_elements[name]
        return int(live.max()) * self.itemsize

    @property
    def num_slabs(self) -> int:
        return len(self.slab_elements)

    @property
    def num_values(self) -> int:
        return len(self.value_elements)

    @property
    def reuse_savings(self) -> float:
        """Fraction of per-op allocation bytes the arena avoids (0..1)."""
        naive = self.naive_bytes
        if naive == 0:
            return 0.0
        return 1.0 - self.arena_bytes / naive

    def summary(self) -> Dict[str, object]:
        return {
            "num_nodes": len(self.order),
            "num_values": self.num_values,
            "num_slabs": self.num_slabs,
            "arena_bytes": self.arena_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "naive_bytes": self.naive_bytes,
            "reuse_savings": self.reuse_savings,
        }


def topological_order(program: Program) -> List[int]:
    """Kahn's algorithm over the node graph, stable in insertion order."""
    n = len(program.nodes)
    preds: List[set] = [set() for _ in range(n)]
    succs: List[set] = [set() for _ in range(n)]
    for idx, node in enumerate(program.nodes):
        for name in node.inputs:
            producer = program.values[name].producer
            if producer is not None and producer != idx:
                preds[idx].add(producer)
                succs[producer].add(idx)
    ready = [i for i in range(n) if not preds[i]]
    order: List[int] = []
    while ready:
        i = ready.pop(0)
        order.append(i)
        for j in sorted(succs[i]):
            preds[j].discard(i)
            if not preds[j]:
                ready.append(j)
    if len(order) != n:
        cyclic = [program.nodes[i].name for i in range(n) if preds[i]]
        raise ProgramError(f"program graph has a cycle through {cyclic}")
    return order


def compute_liveness(program: Program,
                     order: List[int]) -> Dict[str, Tuple[int, int]]:
    """Per-intermediate ``(birth, death)`` step interval (inclusive).

    Program outputs die at the last step so their buffers survive until
    ``Session.run`` copies them out.
    """
    step_of = {node_idx: step for step, node_idx in enumerate(order)}
    last_step = len(order) - 1
    liveness: Dict[str, Tuple[int, int]] = {}
    for value in program.intermediates():
        if value.producer is None:
            raise ProgramError(f"value {value.name!r} has no producer")
        birth = step_of[value.producer]
        death = birth
        for consumer in value.consumers:
            death = max(death, step_of[consumer])
        if value.name in program.outputs:
            death = last_step
        liveness[value.name] = (birth, death)
    return liveness


def plan_program(program: Program, itemsize: int = 4) -> ProgramPlan:
    """Order the graph, run liveness, and pack intermediates into slabs.

    Sizes come from the declared value layouts/shapes, so no compilation
    is required (the analytical memory model plans programs directly);
    session compilation separately validates that every kernel node's
    declared output layout matches its compiled plan's size.
    """
    program.validate()
    order = topological_order(program)
    liveness = compute_liveness(program, order)

    value_elements = {
        v.name: v.num_elements for v in program.intermediates()
    }

    # Greedy best-fit: values are born in execution order; a slab is free
    # once its occupant's death step has passed.  Because a node's output
    # is assigned before its inputs are released, producer/consumer
    # lifetime overlap never shares a slab (double buffering).
    slab_elements: List[int] = []
    slab_of: Dict[str, int] = {}
    free: List[int] = []
    # values grouped by birth / death step
    births: Dict[int, List[str]] = {}
    deaths: Dict[int, List[str]] = {}
    for name, (birth, death) in liveness.items():
        births.setdefault(birth, []).append(name)
        deaths.setdefault(death, []).append(name)

    for step in range(len(order)):
        for name in births.get(step, ()):
            need = value_elements[name]
            best = None
            for slab in free:
                if slab_elements[slab] >= need:
                    if best is None or slab_elements[slab] < slab_elements[best]:
                        best = slab
            if best is not None:
                free.remove(best)
                slab_of[name] = best
            elif free:
                # No free slab fits: grow the largest free one instead of
                # opening a new slab (fewer, bigger slabs -> higher reuse).
                grow = max(free, key=lambda s: slab_elements[s])
                free.remove(grow)
                slab_elements[grow] = need
                slab_of[name] = grow
            else:
                slab_of[name] = len(slab_elements)
                slab_elements.append(need)
        for name in deaths.get(step, ()):
            free.append(slab_of[name])

    return ProgramPlan(
        order=order,
        liveness=liveness,
        slab_of=slab_of,
        slab_elements=slab_elements,
        value_elements=value_elements,
        itemsize=int(itemsize),
    )
