"""Program planning: ordering, liveness, dependences, arena assignment.

Given a :class:`~repro.core.program.Program` whose raggedness signature is
fixed, every intermediate value's byte size is known before execution
(insight I1 of the paper: raggedness is known up front).  The planner
exploits that to replace per-op output allocation with a small set of
reusable arena *slabs*, and to hand execution engines an explicit
dependence structure:

1. :func:`topological_order` orders the nodes (Kahn's algorithm, stable in
   insertion order -- programs built through the ``Program`` API are
   already topological, but the planner does not rely on it);
2. liveness analysis computes, for every intermediate value, the half-open
   interval of node steps during which its buffer must exist: from its
   producing step to its last consuming step (program outputs stay live to
   the end of the program);
3. a greedy best-fit allocator assigns each value to a slab.  A node's
   output is assigned *while its inputs are still live*, so a value never
   aliases the buffers its producer reads -- overlapping producer/consumer
   lifetimes are automatically double-buffered into distinct slabs; slabs
   are recycled only once their occupant's last consumer has executed.
   With ``inplace=True``, a node declared element-wise may instead alias
   its (otherwise dead) input's slab -- a provably-safe in-place update.
   The planner packs both ways and keeps the aliasing only when it does
   not lose, so the in-place arena is never larger than the
   double-buffered one;
4. :func:`compute_dependences` records, per execution step, the exact set
   of predecessor steps that must retire first: the data edges of the
   graph plus the write-after-read edges induced by slab reuse and
   in-place aliasing.  This is the contract the pipelined execution
   engine schedules against -- any step order respecting ``step_preds``
   computes bit-identical results.

The resulting :class:`ProgramPlan` records the slab sizes, the per-value
assignment, the in-place aliases, the dependence edges and the peak arena
bytes, alongside the bytes a per-op allocator would have touched -- the
numbers the memory model and the engine benchmark report.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.program import (
    Program,
    ProgramError,
    ROLE_INTERMEDIATE,
)


@dataclass
class ProgramPlan:
    """The execution plan of one program: order, liveness, deps, arena."""

    #: node indices in execution order
    order: List[int]
    #: value name -> (birth step, death step); steps index into ``order``.
    #: A value is live on ``[birth, death]`` inclusive.
    liveness: Dict[str, Tuple[int, int]]
    #: value name -> arena slab index
    slab_of: Dict[str, int]
    #: per-slab capacity in elements
    slab_elements: List[int]
    #: per-value element counts used for planning
    value_elements: Dict[str, int]
    #: bytes per element (float32 throughout the numeric path)
    itemsize: int = 4
    #: value name -> the input value it aliases in place (same slab)
    inplace_of: Dict[str, str] = field(default_factory=dict)
    #: whether in-place aliasing was enabled for this plan
    inplace: bool = False
    #: per-step predecessor steps (data + anti-dependence edges); the
    #: execution-engine contract -- any order respecting these edges is
    #: bit-identical to serial plan-order execution.
    step_preds: List[Tuple[int, ...]] = field(default_factory=list)
    #: per-step successor steps (transpose of ``step_preds``)
    step_succs: List[Tuple[int, ...]] = field(default_factory=list)
    #: steps with no predecessors (the initial ready set)
    ready_steps: Tuple[int, ...] = ()
    #: the rewritten program when planned with ``fuse=True`` and at
    #: least one region fused; ``order`` / ``liveness`` / steps index
    #: into *its* nodes.  ``None`` for unfused plans.
    fused_program: Optional[Program] = None
    #: the :class:`~repro.core.fusion.FusionReport` (``None`` unfused)
    fusion: Optional[object] = None

    @property
    def arena_bytes(self) -> int:
        """Peak intermediate bytes under arena reuse (sum of slab sizes)."""
        return int(sum(self.slab_elements)) * self.itemsize

    @property
    def naive_bytes(self) -> int:
        """Bytes a per-op allocator would allocate (one buffer per value)."""
        return int(sum(self.value_elements.values())) * self.itemsize

    @property
    def peak_live_bytes(self) -> int:
        """Max bytes simultaneously live at any step.

        The liveness lower bound for a *non-aliasing* allocator;
        ``arena_bytes`` is what the greedy best-fit packing actually
        reserves.  In-place aliased values share their source's buffer at
        the hand-over step, so they are counted once there -- an in-place
        plan's arena can therefore dip below the double-buffered bound.
        For an N-layer stacked program this stays near one layer's
        working set -- the number the cross-layer reuse regression pins
        down.
        """
        if not self.liveness:
            return 0
        steps = len(self.order)
        live = np.zeros(steps, dtype=np.int64)
        for name, (birth, death) in self.liveness.items():
            live[birth:death + 1] += self.value_elements[name]
        for name in self.inplace_of:
            # At its birth step an in-place value occupies its source's
            # buffer, not a second one.
            live[self.liveness[name][0]] -= self.value_elements[name]
        return int(live.max()) * self.itemsize

    @property
    def max_width(self) -> int:
        """Maximum number of steps on any dependence level.

        Levelize the step graph over ``step_preds`` (a step's level is one
        past its deepest predecessor's) and report the widest level: 1 for
        a pure chain, > 1 when independent steps could overlap.  This is
        the cheap static bound the :class:`~repro.core.engine.
        PipelinedEngine` uses to shortcut chain-shaped programs to serial
        dispatch, and what fused programs must raise above 1 for width to
        pay.
        """
        cached = getattr(self, "_max_width_cache", None)
        if cached is not None:
            return cached
        n = len(self.step_preds)
        if n == 0:
            width = 0
        else:
            level = [0] * n
            counts: Dict[int, int] = {}
            for step in range(n):
                preds = self.step_preds[step]
                lv = 1 + max((level[p] for p in preds), default=-1)
                level[step] = lv
                counts[lv] = counts.get(lv, 0) + 1
            width = max(counts.values())
        self._max_width_cache = width
        return width

    @property
    def num_slabs(self) -> int:
        return len(self.slab_elements)

    @property
    def num_values(self) -> int:
        return len(self.value_elements)

    @property
    def inplace_values(self) -> int:
        """Number of values sharing their input's slab in place."""
        return len(self.inplace_of)

    @property
    def inplace_shared_bytes(self) -> int:
        """Bytes of buffer the in-place aliases avoided allocating."""
        return int(sum(self.value_elements[n]
                       for n in self.inplace_of)) * self.itemsize

    @property
    def reuse_savings(self) -> float:
        """Fraction of per-op allocation bytes the arena avoids (0..1)."""
        naive = self.naive_bytes
        if naive == 0:
            return 0.0
        return 1.0 - self.arena_bytes / naive

    def summary(self) -> Dict[str, object]:
        return {
            "num_nodes": len(self.order),
            "num_values": self.num_values,
            "num_slabs": self.num_slabs,
            "arena_bytes": self.arena_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "naive_bytes": self.naive_bytes,
            "reuse_savings": self.reuse_savings,
            "inplace": self.inplace,
            "inplace_values": self.inplace_values,
            "inplace_shared_bytes": self.inplace_shared_bytes,
            "fused": self.fused_program is not None,
            "fusion": (self.fusion.summary()
                       if self.fusion is not None else None),
        }


def topological_order(program: Program) -> List[int]:
    """Kahn's algorithm over the node graph, stable in insertion order.

    The ready set is a min-index heap, so among runnable nodes the one
    inserted earliest always goes first.  For any program built through
    the ``Program`` API (which requires producers before consumers) this
    makes the planned order *exactly* the insertion order -- which is what
    lets :func:`~repro.core.program.merge_programs` shape arena liveness
    by staggering its node emission: a FIFO ready list would flatten the
    interleave into BFS level order and run every fused part in lockstep,
    inflating the fused arena to K x a single part's.
    """
    n = len(program.nodes)
    preds: List[set] = [set() for _ in range(n)]
    succs: List[set] = [set() for _ in range(n)]
    for idx, node in enumerate(program.nodes):
        for name in node.inputs:
            producer = program.values[name].producer
            if producer is not None and producer != idx:
                preds[idx].add(producer)
                succs[producer].add(idx)
    ready = [i for i in range(n) if not preds[i]]
    heapq.heapify(ready)
    order: List[int] = []
    while ready:
        i = heapq.heappop(ready)
        order.append(i)
        for j in sorted(succs[i]):
            preds[j].discard(i)
            if not preds[j]:
                heapq.heappush(ready, j)
    if len(order) != n:
        cyclic = [program.nodes[i].name for i in range(n) if preds[i]]
        raise ProgramError(f"program graph has a cycle through {cyclic}")
    return order


def compute_liveness(program: Program,
                     order: List[int]) -> Dict[str, Tuple[int, int]]:
    """Per-intermediate ``(birth, death)`` step interval (inclusive).

    Program outputs die at the last step so their buffers survive until
    ``Session.run`` copies them out.
    """
    step_of = {node_idx: step for step, node_idx in enumerate(order)}
    last_step = len(order) - 1
    liveness: Dict[str, Tuple[int, int]] = {}
    for value in program.intermediates():
        if value.producer is None:
            raise ProgramError(f"value {value.name!r} has no producer")
        birth = step_of[value.producer]
        death = birth
        for consumer in value.consumers:
            death = max(death, step_of[consumer])
        if value.name in program.outputs:
            death = last_step
        liveness[value.name] = (birth, death)
    return liveness


def compute_dependences(
    program: Program,
    order: List[int],
    slab_of: Dict[str, int],
    liveness: Dict[str, Tuple[int, int]],
    inplace_of: Optional[Dict[str, str]] = None,
) -> Tuple[List[Tuple[int, ...]], List[Tuple[int, ...]], Tuple[int, ...]]:
    """Per-step dependence edges: the execution engine's contract.

    Three edge families, all expressed over *steps* (indices into
    ``order``):

    * **data**: a step reading a value waits for the step producing it;
    * **in-place write-after-read**: a step writing its output into an
      aliased input's buffer waits for every *other* consumer of that
      input -- a concurrent engine must not let the in-place writer
      clobber bytes a sibling reader is still consuming;
    * **slab reuse write-after-read/write**: a step whose output is
      assigned to a recycled slab waits for the previous occupant's
      producer and all of its consumers.  Serial execution gets this for
      free from step order; a concurrent engine needs the explicit edges.

    Returns ``(step_preds, step_succs, ready_steps)``.
    """
    inplace_of = inplace_of or {}
    step_of = {node_idx: step for step, node_idx in enumerate(order)}
    n = len(order)
    preds: List[set] = [set() for _ in range(n)]

    # Data edges.
    for step, node_idx in enumerate(order):
        node = program.nodes[node_idx]
        for name in node.inputs:
            producer = program.values[name].producer
            if producer is not None and step_of[producer] != step:
                preds[step].add(step_of[producer])

    # In-place write-after-read edges.
    for out_name, src_name in inplace_of.items():
        writer = step_of[program.values[out_name].producer]
        for consumer in program.values[src_name].consumers:
            cs = step_of[consumer]
            if cs != writer:
                preds[writer].add(cs)

    # Slab-reuse anti-dependence edges: for each slab, walk its occupants
    # in birth order; each new occupant's producer must wait for the
    # previous occupant's producer and consumers to retire.  (In-place
    # hand-overs are covered by the edges above plus the data edge, but
    # adding them again is harmless and keeps this loop uniform.)
    by_slab: Dict[int, List[str]] = {}
    for name, slab in slab_of.items():
        by_slab.setdefault(slab, []).append(name)
    for names in by_slab.values():
        names.sort(key=lambda n: liveness[n][0])
        for prev, cur in zip(names, names[1:]):
            writer = step_of[program.values[cur].producer]
            spec = program.values[prev]
            touching = [spec.producer] + list(spec.consumers)
            for node_idx in touching:
                ts = step_of[node_idx]
                if ts != writer:
                    preds[writer].add(ts)

    step_preds = [tuple(sorted(p)) for p in preds]
    succs: List[set] = [set() for _ in range(n)]
    for step, ps in enumerate(step_preds):
        for p in ps:
            succs[p].add(step)
    step_succs = [tuple(sorted(s)) for s in succs]
    ready = tuple(s for s in range(n) if not step_preds[s])
    return step_preds, step_succs, ready


def _pack_slabs(
    program: Program,
    order: List[int],
    liveness: Dict[str, Tuple[int, int]],
    value_elements: Dict[str, int],
    inplace: bool,
) -> Tuple[List[int], Dict[str, int], Dict[str, str]]:
    """Greedy best-fit slab packing over the liveness intervals.

    Values are born in execution order; a slab is free once its
    occupant's death step has passed.  Because a node's output is
    assigned before its inputs are released, producer/consumer lifetime
    overlap never shares a slab (double buffering) -- unless the
    producing node is declared element-wise and ``inplace`` reassigns
    the dying input's slab to the output directly.

    Values in ``program.merge_roots`` (the first node's outputs of each
    fused part, see :func:`~repro.core.program.merge_programs`) always get
    a brand-new slab: reusing a freed slab would add a write-after-read
    edge onto the part's entry step, knocking it out of ``ready_steps``
    and silently serializing the fused width the merge exists to create.

    Returns ``(slab_elements, slab_of, inplace_of)``.
    """
    outputs = set(program.outputs)
    fresh_roots = getattr(program, "merge_roots", frozenset())
    slab_elements: List[int] = []
    slab_of: Dict[str, int] = {}
    inplace_of: Dict[str, str] = {}
    free: List[int] = []
    #: slab index -> the value currently occupying it (an in-place
    #: hand-over replaces the occupant without the slab ever going free).
    occupant: Dict[int, str] = {}
    # values grouped by birth / death step
    births: Dict[int, List[str]] = {}
    deaths: Dict[int, List[str]] = {}
    for name, (birth, death) in liveness.items():
        births.setdefault(birth, []).append(name)
        deaths.setdefault(death, []).append(name)

    def _inplace_source(name: str, step: int) -> Optional[str]:
        node = program.nodes[order[step]]
        if not node.elementwise or len(node.outputs) != 1:
            return None
        if not getattr(node, "fills_output", False):
            # Kernel outputs (and host outputs needing pre-zeroing) are
            # zero-filled before dispatch, which would clobber the
            # aliased input before the node reads it.
            return None
        need = value_elements[name]
        for cand in node.elementwise:
            spec = program.values[cand]
            if spec.role != ROLE_INTERMEDIATE or cand in outputs:
                continue
            if value_elements.get(cand) != need:
                continue
            if liveness[cand][1] != step:
                # Another consumer reads the input after this node: the
                # in-place write would clobber live bytes.
                continue
            return cand
        return None

    for step in range(len(order)):
        for name in births.get(step, ()):
            need = value_elements[name]
            if name in fresh_roots:
                slab_of[name] = len(slab_elements)
                slab_elements.append(need)
                occupant[slab_of[name]] = name
                continue
            source = _inplace_source(name, step) if inplace else None
            if source is not None:
                slab = slab_of[source]
                slab_of[name] = slab
                occupant[slab] = name
                inplace_of[name] = source
                continue
            best = None
            for slab in free:
                if slab_elements[slab] >= need:
                    if best is None or slab_elements[slab] < slab_elements[best]:
                        best = slab
            if best is not None:
                free.remove(best)
                slab_of[name] = best
            elif free:
                # No free slab fits: grow the largest free one instead of
                # opening a new slab (fewer, bigger slabs -> higher reuse).
                grow = max(free, key=lambda s: slab_elements[s])
                free.remove(grow)
                slab_elements[grow] = need
                slab_of[name] = grow
            else:
                slab_of[name] = len(slab_elements)
                slab_elements.append(need)
            occupant[slab_of[name]] = name
        for name in deaths.get(step, ()):
            slab = slab_of[name]
            # An in-place successor took the slab over at this very step:
            # it stays occupied, not free.
            if occupant.get(slab) == name:
                free.append(slab)
                occupant.pop(slab)

    return slab_elements, slab_of, inplace_of


def plan_program(program: Program, itemsize: int = 4,
                 inplace: bool = False, fuse: bool = False) -> ProgramPlan:
    """Order the graph, run liveness, pack intermediates into slabs.

    Sizes come from the declared value layouts/shapes, so no compilation
    is required (the analytical memory model plans programs directly);
    session compilation separately validates that every kernel node's
    declared output layout matches its compiled plan's size.

    With ``inplace=True``, a single-output host node declared
    element-wise may alias one of its declared-safe inputs instead of
    double-buffering, provided that input is an intermediate (not a
    program input, constant, or marked output), has exactly the output's
    element count, and -- crucially -- has no consumer later than this
    node: a second live reader forbids the in-place update, since the
    write would clobber bytes that reader has yet to consume.  Aliased
    values share the input's slab; the dependence edges recorded in
    ``step_preds`` make the sharing safe under concurrent dispatch too.
    Guarantee: if the aliased packing would end up *larger* than plain
    double buffering (hand-over can strand a big recycled slab), the
    planner falls back to the double-buffered packing, so
    ``arena_bytes`` with ``inplace=True`` never exceeds the default.

    With ``fuse=True`` the graph is first rewritten by
    :func:`~repro.core.fusion.fuse_program`: contiguous same-kind node
    runs collapse into single fused steps and fully-internal
    intermediates leave the plan (their slabs disappear).  The plan's
    ``order`` / liveness / dependence structure then describes the
    *fused* program, available as ``plan.fused_program``; callers keep
    addressing the original program.
    """
    program.validate()
    fused_program = None
    fusion = None
    if fuse:
        from repro.core.fusion import fuse_program

        fused_program, fusion = fuse_program(program)
        if fused_program is not None:
            program = fused_program
    order = topological_order(program)
    liveness = compute_liveness(program, order)

    value_elements = {
        v.name: v.num_elements for v in program.intermediates()
    }

    slab_elements, slab_of, inplace_of = _pack_slabs(
        program, order, liveness, value_elements, inplace=inplace)
    if inplace and inplace_of:
        # In-place hand-over keeps the source's slab occupied past its
        # death, which can -- on adversarial shapes -- strand a large
        # recycled slab and make the greedy total *worse* than plain
        # double buffering.  Pack both ways and keep the aliasing only
        # when it does not lose, so arena(inplace) <= arena(2-buffered)
        # holds by construction.
        plain_elements, plain_of, _ = _pack_slabs(
            program, order, liveness, value_elements, inplace=False)
        if sum(slab_elements) > sum(plain_elements):
            slab_elements, slab_of, inplace_of = (
                plain_elements, plain_of, {})

    step_preds, step_succs, ready_steps = compute_dependences(
        program, order, slab_of, liveness, inplace_of)

    return ProgramPlan(
        order=order,
        liveness=liveness,
        slab_of=slab_of,
        slab_elements=slab_elements,
        value_elements=value_elements,
        itemsize=int(itemsize),
        inplace_of=inplace_of,
        inplace=bool(inplace),
        step_preds=step_preds,
        step_succs=step_succs,
        ready_steps=ready_steps,
        fused_program=fused_program,
        fusion=fusion,
    )


# ---------------------------------------------------------------------------
# Batch-dimension sharding
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice of a ragged batch's governing dimension.

    Sequences ``[seq_start, seq_stop)`` of the original batch, occupying
    packed token rows ``[token_start, token_stop)`` of any dense
    ``(total_tokens, width)`` staging array.  ``lengths`` is the shard's
    own length vector -- the raggedness signature its sub-program is
    built (and its arena planned) for.
    """

    index: int
    seq_start: int
    seq_stop: int
    token_start: int
    token_stop: int
    lengths: Tuple[int, ...]

    @property
    def num_sequences(self) -> int:
        return self.seq_stop - self.seq_start

    @property
    def num_tokens(self) -> int:
        return self.token_stop - self.token_start

    def token_range(self) -> Tuple[int, int]:
        return (self.token_start, self.token_stop)


def plan_shards(lengths: Sequence[int], n_shards: int) -> List[ShardSpec]:
    """Cut a ragged batch into contiguous, token-balanced shards.

    Shards never split a sequence (the governing dimension is the batch
    axis, and every per-sequence computation stays intact), so per-shard
    execution of a batch-parallel program is *structurally* identical to
    running the shard's sequences alone -- the foundation of the
    bit-identity guarantee ``Session.run_sharded`` inherits.  Boundaries
    greedily balance token counts: each cut is placed where the running
    token total first reaches the next multiple of ``total / n_shards``.
    ``n_shards`` is capped at ``len(lengths)`` (a shard needs at least
    one sequence); empty batches are rejected.
    """
    lengths = [int(x) for x in lengths]
    if not lengths:
        raise ProgramError("cannot shard an empty batch")
    if any(x <= 0 for x in lengths):
        raise ProgramError(f"sequence lengths must be positive: {lengths}")
    n_shards = int(n_shards)
    if n_shards < 1:
        raise ProgramError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, len(lengths))

    total = sum(lengths)
    shards: List[ShardSpec] = []
    seq_start = 0
    token_start = 0
    running = 0
    for i, length in enumerate(lengths):
        running += length
        remaining_seqs = len(lengths) - (i + 1)
        remaining_shards = n_shards - (len(shards) + 1)
        target = total * (len(shards) + 1) / n_shards
        # Cut once the running total reaches this shard's token target --
        # but never leave fewer sequences than shards still to form.
        if ((running >= target or remaining_seqs == remaining_shards)
                and remaining_shards >= 0 and len(shards) < n_shards - 1
                and remaining_seqs >= remaining_shards):
            shards.append(ShardSpec(
                index=len(shards), seq_start=seq_start, seq_stop=i + 1,
                token_start=token_start, token_stop=running,
                lengths=tuple(lengths[seq_start:i + 1])))
            seq_start = i + 1
            token_start = running
    shards.append(ShardSpec(
        index=len(shards), seq_start=seq_start, seq_stop=len(lengths),
        token_start=token_start, token_stop=total,
        lengths=tuple(lengths[seq_start:])))
    return shards
