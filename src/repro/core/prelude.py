"""Prelude generation.

The *prelude* (paper Section 2, Figure 4 and Section 7.4) is host-side code
that runs before the main kernel and materialises the auxiliary data
structures the generated device code needs:

* **storage offsets** -- the cumulative ``A_d`` / ``row_idx`` arrays used by
  the O(1) storage-access lowering (:mod:`repro.core.storage`);
* **loop-fusion maps** -- when two vloops are fused, arrays ``ffo``, ``ffi``
  and ``foif`` that relate the fused iteration variable ``f`` to the original
  variables ``(o, i)`` (Section 5.1);
* an (optional) **host-to-device copy** of those arrays, which on the GPU
  backend is the dominant prelude cost in the paper.

Because the raggedness pattern of a mini-batch is known before any kernels
run (insight I1 of the paper) and is shared across every layer of a model,
the prelude only depends on the sequence lengths and is computed once per
mini-batch.

The module also implements the *sparse storage scheme* used by prior sparse
tensor compilers (CSF-style per-slice position arrays) so the benchmark for
Tables 7-8 can compare the cost of the two schemes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import LRUDict
from repro.core.extents import ceil_to
from repro.core.storage import RaggedLayout


@dataclass
class FusionMaps:
    """Arrays relating a fused vloop's variable to the original loop variables.

    ``ffo[f]`` is the outer index, ``ffi[f]`` the inner index corresponding
    to fused index ``f``; ``foif_row[o]`` is the fused index at which outer
    iteration ``o`` starts, so ``foif(o, i) = foif_row[o] + i``.  The fused
    loop bound is ``fused_extent``.
    """

    ffo: np.ndarray
    ffi: np.ndarray
    foif_row: np.ndarray
    fused_extent: int

    def foif(self, o: int, i: int) -> int:
        """The fused index corresponding to ``(o, i)``."""
        return int(self.foif_row[o]) + int(i)

    def check_inverses(self) -> bool:
        """Verify the uninterpreted-function axioms of Appendix B.2."""
        f = np.arange(self.fused_extent, dtype=np.int64)
        recon = self.foif_row[self.ffo] + self.ffi
        return bool(np.array_equal(recon, f))

    @property
    def memory_bytes(self) -> int:
        return int(self.ffo.nbytes + self.ffi.nbytes + self.foif_row.nbytes)


@dataclass
class PreludeResult:
    """Everything the prelude produced for one operator / mini-batch."""

    storage_aux: Dict[str, np.ndarray] = field(default_factory=dict)
    fusion_maps: Dict[str, FusionMaps] = field(default_factory=dict)
    storage_time_s: float = 0.0
    fusion_time_s: float = 0.0
    copy_time_s: float = 0.0

    @property
    def storage_memory_bytes(self) -> int:
        return int(sum(a.nbytes for a in self.storage_aux.values()))

    @property
    def fusion_memory_bytes(self) -> int:
        return int(sum(m.memory_bytes for m in self.fusion_maps.values()))

    @property
    def total_memory_bytes(self) -> int:
        return self.storage_memory_bytes + self.fusion_memory_bytes

    @property
    def total_time_s(self) -> float:
        return self.storage_time_s + self.fusion_time_s + self.copy_time_s


def build_row_offsets(lengths: Sequence[int], pad: int = 1,
                      inner_factor: int = 1) -> np.ndarray:
    """Cumulative start offsets for a ``[batch, len(b) * inner_factor]`` tensor.

    ``pad`` applies storage padding to each length before accumulation,
    matching the ``row_idx_b`` computation in the paper's Figure 4 where the
    output tensor is padded to a multiple of 4.
    """
    lens = np.asarray(lengths, dtype=np.int64)
    padded = ceil_to(lens, pad) * int(inner_factor)
    offsets = np.zeros(lens.size + 1, dtype=np.int64)
    np.cumsum(padded, out=offsets[1:])
    return offsets


def build_fusion_maps(lengths: Sequence[int], pad: int = 1) -> FusionMaps:
    """Build the ``ffo`` / ``ffi`` / ``foif`` arrays for fusing a vloop nest.

    Fuses ``for o in range(M): for i in range(ceil(s(o), pad)*pad)`` into a
    single loop of extent ``sum_o padded(s(o))``.  This is the vectorised
    equivalent of the prelude loop in Figure 4 / Figure 6 of the paper.
    """
    lens = np.asarray(lengths, dtype=np.int64)
    padded = ceil_to(lens, pad)
    foif_row = np.zeros(lens.size + 1, dtype=np.int64)
    np.cumsum(padded, out=foif_row[1:])
    total = int(foif_row[-1])
    ffo = np.repeat(np.arange(lens.size, dtype=np.int64), padded)
    # ffi = f - foif_row[ffo]  (position within the outer iteration)
    ffi = np.arange(total, dtype=np.int64) - foif_row[ffo]
    return FusionMaps(ffo=ffo, ffi=ffi, foif_row=foif_row[:-1].copy(),
                      fused_extent=total)


def bucket_by_signature(count: int,
                        arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Group governing-loop indices by identical per-index signatures.

    ``arrays`` are per-governing-index tables (1-D bound tables or 2-D
    per-instance shape arrays, each with ``count`` leading entries); two
    indices land in the same bucket iff every table agrees on them.  The
    vector backend uses this to execute all instances of one bucket as a
    single stacked NumPy operation, shrinking its Python-level loop from
    O(batch) to O(distinct raggedness signatures).  With no tables at all,
    every index is signature-equal and a single bucket is returned.

    Buckets preserve ascending index order within each group and are
    ordered by first occurrence, so the result is deterministic.
    """
    if count <= 0:
        return []
    idx = np.arange(count, dtype=np.int64)
    if not arrays:
        return [idx]
    cols = [np.asarray(a)[:count].reshape(count, -1) for a in arrays]
    sig = np.concatenate(cols, axis=1)
    # Stable sort by signature rows, then cut at row changes.
    order = np.lexsort(sig.T[::-1])
    sorted_sig = sig[order]
    new_group = np.any(sorted_sig[1:] != sorted_sig[:-1], axis=1)
    starts = np.flatnonzero(np.concatenate(([True], new_group)))
    ends = np.concatenate((starts[1:], [count]))
    buckets = [np.sort(order[s:e]) for s, e in zip(starts, ends)]
    buckets.sort(key=lambda b: int(b[0]))
    return buckets


def bulk_pad_lengths(lengths: Sequence[int], multiple: int) -> Tuple[np.ndarray, int]:
    """Apply *bulk padding* to a batch of sequence lengths (Section 7.2).

    Bulk padding appends a synthetic "padding sequence" so the *sum* of the
    lengths becomes a multiple of ``multiple`` (64 in the paper's encoder
    implementation).  Returns the possibly extended length array and the
    number of padding elements added.
    """
    lens = np.asarray(lengths, dtype=np.int64)
    total = int(lens.sum())
    padded_total = int(ceil_to(total, multiple))
    extra = padded_total - total
    if extra == 0:
        return lens.copy(), 0
    return np.concatenate([lens, np.asarray([extra], dtype=np.int64)]), extra


class PreludeBuilder:
    """Builds and times the prelude for a set of layouts and fused loops.

    The builder mirrors the structure of the measurements in Section 7.4:
    storage-offset construction, loop-fusion map construction, and the cost
    of copying the resulting arrays to the device (modelled through the
    device's copy bandwidth; the copy itself is a no-op on the host).
    """

    def __init__(self, copy_bandwidth_gbps: float = 12.0,
                 copy_latency_us: float = 10.0,
                 cache: Optional["PreludeCache"] = None):
        self.copy_bandwidth_gbps = copy_bandwidth_gbps
        self.copy_latency_us = copy_latency_us
        #: optional :class:`PreludeCache` reusing fusion maps across builds
        #: of mini-batches with identical length tuples (insight I1).
        self.cache = cache

    def build(
        self,
        layouts: Dict[str, RaggedLayout],
        fused_loops: Optional[Dict[str, Tuple[Sequence[int], int]]] = None,
        copy_to_device: bool = True,
    ) -> PreludeResult:
        """Run the prelude.

        Parameters
        ----------
        layouts:
            Named ragged layouts whose offset arrays are needed.
        fused_loops:
            Mapping from a name to ``(lengths, pad)`` for every fused vloop
            whose fusion maps are needed.
        copy_to_device:
            Whether to account for a host-to-device copy of the auxiliary
            arrays (true for the GPU backend, false for CPUs).
        """
        result = PreludeResult()
        t0 = time.perf_counter()
        for name, layout in layouts.items():
            # With a cache attached, reuse each layout's own memoized aux;
            # without one, force a rebuild so the measured time reflects a
            # real prelude run (the Tables 7-8 benchmarks rely on that).
            aux = layout.build_aux(force=self.cache is None)
            result.storage_aux[name] = aux.row_offsets
        result.storage_time_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for name, (lengths, pad) in (fused_loops or {}).items():
            if self.cache is not None:
                result.fusion_maps[name] = self.cache.fusion_maps(lengths, pad)
            else:
                result.fusion_maps[name] = build_fusion_maps(lengths, pad)
        result.fusion_time_s = time.perf_counter() - t0

        if copy_to_device:
            nbytes = result.total_memory_bytes
            result.copy_time_s = (
                self.copy_latency_us * 1e-6
                + nbytes / (self.copy_bandwidth_gbps * 1e9)
            )
        return result


# ---------------------------------------------------------------------------
# Prelude memoization (paper insight I1)
# ---------------------------------------------------------------------------


class PreludeCache:
    """Memoizes prelude outputs keyed by the mini-batch length tuple.

    The paper's insight I1: the raggedness pattern of a mini-batch is known
    before any kernel runs *and is shared across every layer of the model*,
    so the row-offset arrays and fusion maps only need to be built once per
    mini-batch, not once per kernel.  Keys are the (lengths, pad) pair;
    values are the materialised arrays.  ``hits`` / ``misses`` expose the
    reuse rate to benchmarks and tests.  Least-recently-used entries are
    evicted beyond ``capacity``, bounding memory when a long-running
    process sees many distinct mini-batches.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = int(capacity)
        self._fusion: LRUDict = LRUDict(self.capacity)
        self._rows: LRUDict = LRUDict(self.capacity)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(lengths: Sequence[int]) -> bytes:
        return np.ascontiguousarray(lengths, dtype=np.int64).tobytes()

    def fusion_maps(self, lengths: Sequence[int], pad: int = 1) -> FusionMaps:
        """Memoized :func:`build_fusion_maps`."""
        key = (self._key(lengths), int(pad))
        maps = self._fusion.get(key)
        if maps is not None:
            self.hits += 1
            return maps
        self.misses += 1
        maps = build_fusion_maps(lengths, pad=pad)
        self._fusion.put(key, maps)
        return maps

    def row_offsets(self, lengths: Sequence[int], pad: int = 1,
                    inner_factor: int = 1) -> np.ndarray:
        """Memoized :func:`build_row_offsets`."""
        key = (self._key(lengths), int(pad), int(inner_factor))
        offsets = self._rows.get(key)
        if offsets is not None:
            self.hits += 1
            return offsets
        self.misses += 1
        offsets = build_row_offsets(lengths, pad=pad, inner_factor=inner_factor)
        self._rows.put(key, offsets)
        return offsets

    def clear(self) -> None:
        self._fusion.clear()
        self._rows.clear()


# ---------------------------------------------------------------------------
# The CSF-style scheme used by prior sparse tensor compilers (for Tables 7-8)
# ---------------------------------------------------------------------------


@dataclass
class SparseSchemeResult:
    """Auxiliary data for the tree-based sparse storage scheme (Appendix B.1)."""

    pos_arrays: List[np.ndarray]
    build_time_s: float

    @property
    def memory_bytes(self) -> int:
        return int(sum(a.nbytes for a in self.pos_arrays))

    @property
    def entries(self) -> int:
        return int(sum(a.size for a in self.pos_arrays))


def build_sparse_scheme_aux(layout: RaggedLayout) -> SparseSchemeResult:
    """Compute the per-level position arrays a CSF-style scheme would store.

    Unlike CoRa's dgraph-aware lowering, the sparse scheme assumes the slice
    size of every sparse level may depend on *all* outer levels, so each vdim
    level stores one position entry per slice of that level.  For the 4-D
    attention tensor this is ``s1 + s3 * sum_b s(b)`` entries versus CoRa's
    single ``s1 + 1``-entry array.
    """
    t0 = time.perf_counter()
    m = layout.governing_extent()
    batch_idx = np.arange(m, dtype=np.int64)
    pos_arrays: List[np.ndarray] = []
    # Number of slices (fibers) at the current level, per outermost index.
    fibers_per_b = np.ones(m, dtype=np.int64)
    for i in range(1, layout.ndim):
        ext = layout.extents[i]
        if ext.is_constant:
            widths = np.full(m, int(ext()), dtype=np.int64)
        else:
            widths = np.asarray(ext(batch_idx), dtype=np.int64)
        if layout.is_vdim(i):
            # One pos entry per fiber at this level, plus a terminator.
            n_fibers = int(fibers_per_b.sum())
            # The actual pos values are the running sums of widths repeated
            # per fiber; we materialise them to measure realistic build cost.
            repeated = np.repeat(widths, fibers_per_b)
            pos = np.zeros(n_fibers + 1, dtype=np.int64)
            np.cumsum(repeated, out=pos[1:])
            pos_arrays.append(pos)
        fibers_per_b = fibers_per_b * widths
    build_time = time.perf_counter() - t0
    return SparseSchemeResult(pos_arrays=pos_arrays, build_time_s=build_time)
