"""The Ragged API: describing computations on ragged tensors.

This mirrors the user-facing API of paper Section 4 (Listing 1).  A ragged
operator is described by:

* the *named dimensions* of its output and the *loop extents* of the
  corresponding loops (constant, or functions of outer named dimensions);
* the *storage format* of the output (extents per dimension, possibly
  different from the loop extents because of storage padding);
* a body function, called once with one loop-variable expression per
  dimension, returning an expression tree (possibly containing reductions).

Example -- the operator of Figure 1::

    batch, seq = Dim("batch"), Dim("seq")
    lens = np.array([5, 2, 3])
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(3), VarExtent(batch, lens)])
    B = compute("B", [batch, seq],
                [ConstExtent(3), VarExtent(batch, lens)],
                lambda o, i: 2.0 * A[o, i])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dims import Dim
from repro.core.errors import LoweringError
from repro.core.extents import ConstExtent, Extent, VarExtent, as_extent
from repro.core.ir import (
    Expr,
    LoopVar,
    Reduce,
    ReduceAxis,
    TensorSpec,
    loop_vars_used,
    reductions_in,
    tensor_reads,
    wrap,
)
from repro.core.storage import RaggedLayout


def placeholder(
    name: str,
    dims: Sequence[Dim],
    extents: Sequence[Union[int, Extent]],
) -> TensorSpec:
    """Declare a symbolic input tensor (alias: :func:`input_tensor`)."""
    exts = tuple(as_extent(e) for e in extents)
    if len(exts) != len(dims):
        raise LoweringError(
            f"tensor {name}: got {len(dims)} dims but {len(exts)} extents"
        )
    return TensorSpec(name=name, dims=tuple(dims), extents=exts)


#: Paper-style alias: ``input_tensor`` in Listing 1.
input_tensor = placeholder


def reduce_axis(extent: Union[int, Extent], name: str = "k") -> ReduceAxis:
    """Declare a reduction axis with the given extent."""
    return ReduceAxis(dim=Dim(name), extent=as_extent(extent))


def sum_reduce(body: Expr, axes: Union[ReduceAxis, Sequence[ReduceAxis]]) -> Reduce:
    """Sum ``body`` over one or more reduction axes."""
    if isinstance(axes, ReduceAxis):
        axes = (axes,)
    return Reduce(combiner="sum", body=wrap(body), axes=tuple(axes), init=0.0)


def max_reduce(body: Expr, axes: Union[ReduceAxis, Sequence[ReduceAxis]]) -> Reduce:
    """Max-reduce ``body`` over one or more reduction axes."""
    if isinstance(axes, ReduceAxis):
        axes = (axes,)
    return Reduce(combiner="max", body=wrap(body), axes=tuple(axes),
                  init=-np.inf)


@dataclass
class RaggedOperator:
    """A fully described (but not yet scheduled) ragged operator.

    Attributes
    ----------
    name:
        Operator name; also the name of its output tensor.
    dims:
        Output / loop named dimensions, outermost first.
    loop_extents:
        Extent of each loop.  Variable extents make the loop a *vloop*.
    storage_extents:
        Extent of each output-tensor dimension (defaults to the loop extents).
    body_fn:
        Callable invoked with one :class:`LoopVar` per dimension; returns the
        body expression.
    """

    name: str
    dims: Tuple[Dim, ...]
    loop_extents: Tuple[Extent, ...]
    body_fn: Callable[..., Expr]
    storage_extents: Tuple[Extent, ...] = ()
    inputs: Tuple[TensorSpec, ...] = ()
    body: Expr = field(init=False)
    output: TensorSpec = field(init=False)

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.loop_extents):
            raise LoweringError(
                f"operator {self.name}: {len(self.dims)} dims but "
                f"{len(self.loop_extents)} loop extents"
            )
        if not self.storage_extents:
            self.storage_extents = tuple(self.loop_extents)
        if len(self.storage_extents) != len(self.dims):
            raise LoweringError(
                f"operator {self.name}: storage format must have one extent "
                "per output dimension"
            )
        loop_vars = [LoopVar(d) for d in self.dims]
        self.body = wrap(self.body_fn(*loop_vars))
        self.output = TensorSpec(
            name=self.name, dims=self.dims, extents=self.storage_extents
        )
        if not self.inputs:
            self.inputs = tuple(
                {read.tensor.name: read.tensor for read in tensor_reads(self.body)}.values()
            )
        self._validate()

    # -- validation ---------------------------------------------------------

    def _validate(self) -> None:
        # Variable loop extents must depend on dimensions that are loops of
        # this operator and appear *outside* the variable loop.
        positions = {d: i for i, d in enumerate(self.dims)}
        for i, ext in enumerate(self.loop_extents):
            for dep in ext.deps:
                if dep not in positions:
                    raise LoweringError(
                        f"loop {self.dims[i].name} of operator {self.name} "
                        f"depends on {dep.name}, which is not a loop of the "
                        "operator"
                    )
                if positions[dep] >= i:
                    raise LoweringError(
                        f"loop {self.dims[i].name} depends on {dep.name}, "
                        "which is not an outer loop"
                    )
        # Storage padding must be at least the loop padding is enforced at
        # scheduling time; here we only check extents are well formed.

    # -- queries ------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def is_vloop(self, i: int) -> bool:
        return not self.loop_extents[i].is_constant

    def vloops(self) -> List[int]:
        return [i for i in range(self.ndim) if self.is_vloop(i)]

    def reduction_axes(self) -> List[ReduceAxis]:
        axes: List[ReduceAxis] = []
        for red in reductions_in(self.body):
            axes.extend(red.axes)
        return axes

    def output_layout(self, storage_padding: Optional[Dict[Dim, int]] = None) -> RaggedLayout:
        """The storage layout of the output tensor."""
        return RaggedLayout(self.dims, self.storage_extents,
                            storage_padding=storage_padding)

    def input_layout(self, spec: TensorSpec,
                     storage_padding: Optional[Dict[Dim, int]] = None) -> RaggedLayout:
        """Build a layout for an input tensor spec (dims may be reused)."""
        return RaggedLayout(spec.dims, spec.extents,
                            storage_padding=storage_padding)

    def __repr__(self) -> str:
        kinds = ["v" if self.is_vloop(i) else "c" for i in range(self.ndim)]
        loops = ", ".join(f"{d.name}:{k}" for d, k in zip(self.dims, kinds))
        return f"RaggedOperator({self.name!r}, loops=[{loops}])"


def compute(
    name: str,
    dims: Sequence[Dim],
    loop_extents: Sequence[Union[int, Extent]],
    body_fn: Callable[..., Expr],
    storage_extents: Optional[Sequence[Union[int, Extent]]] = None,
) -> RaggedOperator:
    """Describe a ragged operator (the ``compute`` call of Listing 1).

    Parameters
    ----------
    name:
        Name of the operator and of its output tensor.
    dims:
        Named dimensions of the output, outermost first.
    loop_extents:
        Loop bound for each dimension; a :class:`VarExtent` makes it a vloop.
    body_fn:
        Called with one loop-variable expression per dimension; must return
        the expression computing one output element.
    storage_extents:
        Storage format of the output (defaults to ``loop_extents``).
    """
    return RaggedOperator(
        name=name,
        dims=tuple(dims),
        loop_extents=tuple(as_extent(e) for e in loop_extents),
        body_fn=body_fn,
        storage_extents=tuple(as_extent(e) for e in (storage_extents or ())),
    )
