"""Analytical cost model for multi-kernel workloads.

The operator library and the transformer model describe their execution as a
sequence of :class:`KernelLaunch` objects -- each with a FLOP count, bytes
moved, an implementation class (vendor / hand-optimized / compiler /
framework), the number of independent parallel tasks it exposes and an
optional per-task work distribution for load-imbalance modelling.  A
:class:`Workload` groups launches (with optional host-to-device copies and
framework per-op dispatch overheads), and :class:`CostModel` turns a
workload plus a :class:`~repro.substrates.device.Device` into a latency.

Modelled effects (each tied to a phenomenon discussed in the paper):

* **wasted computation** -- callers pass padded vs. minimal FLOPs
  (Figures 2, 9-11, 22);
* **kernel launch overhead** -- more, smaller kernels cost more on the GPU;
  fusion reduces the launch count (Figure 3, Figure 12);
* **load imbalance** -- a parallel loop whose iterations have very different
  amounts of work finishes when its slowest unit finishes; thread remapping
  (sorting heavy iterations first) reduces the imbalance (Figure 10);
* **occupancy** -- a kernel exposing fewer parallel tasks than the device
  has units cannot use the whole machine; operation splitting reduces
  parallelism, horizontal fusion restores it (Figures 14, 20, 21);
* **indirect-access overhead** -- kernels that read prelude-built auxiliary
  arrays inside their inner loops pay a small per-FLOP penalty, removed by
  load hoisting (Figure 23);
* **host-to-device copies and prelude time** (Section 7.4, Tables 7-8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.substrates.device import Device


@dataclass
class KernelLaunch:
    """One device kernel in a workload."""

    name: str
    flops: float
    bytes_moved: float
    impl_class: str = "compiler"
    #: number of independent tasks (thread blocks / parallel loop iterations)
    parallel_tasks: int = 1 << 20
    #: optional per-task work (same units as flops); used for imbalance
    task_work: Optional[np.ndarray] = None
    #: whether heavy tasks are scheduled first (thread remapping / sorting)
    balanced: bool = True
    #: fraction of extra work due to indirect auxiliary-array accesses
    indirect_access_overhead: float = 0.0
    #: kernels horizontally fused with this one share a single launch
    hfused_with: Optional[str] = None

    def effective_flops(self) -> float:
        return self.flops * (1.0 + self.indirect_access_overhead)


@dataclass
class Workload:
    """A sequence of kernels plus host-side overheads."""

    name: str
    kernels: List[KernelLaunch] = field(default_factory=list)
    #: bytes of auxiliary data copied host-to-device before the kernels run
    h2d_bytes: float = 0.0
    #: host-side prelude time in seconds (measured, not modelled)
    prelude_time_s: float = 0.0
    #: per-operator framework dispatch overhead (for framework baselines)
    dispatch_overhead_us: float = 0.0

    def add(self, kernel: KernelLaunch) -> "Workload":
        self.kernels.append(kernel)
        return self

    def total_flops(self) -> float:
        return float(sum(k.flops for k in self.kernels))

    def total_bytes(self) -> float:
        return float(sum(k.bytes_moved for k in self.kernels))


@dataclass
class CostBreakdown:
    """Latency of a workload broken down per kernel (seconds)."""

    total_s: float
    per_kernel_s: Dict[str, float]
    launch_s: float
    copy_s: float
    prelude_s: float
    dispatch_s: float

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3


class CostModel:
    """Evaluates workloads on a simulated device."""

    def __init__(self, device: Device):
        self.device = device

    # -- single kernel ---------------------------------------------------------

    def kernel_seconds(self, kernel: KernelLaunch, include_launch: bool = True) -> float:
        device = self.device
        eff = device.efficiency_of(kernel.impl_class)
        peak = device.peak_gflops * 1e9 * eff

        # Occupancy: a kernel with fewer parallel tasks than units cannot
        # saturate the device.
        tasks = max(int(kernel.parallel_tasks), 1)
        occupancy = min(1.0, tasks / device.parallel_units)

        if kernel.task_work is not None and kernel.task_work.size > 0:
            # Load imbalance: distribute the per-task work w_i over the U
            # units and finish when the most-loaded unit finishes.
            # Scheduling heavy tasks first (LPT -- what thread remapping /
            # sorting by length achieves) approaches the ideal sum/U;
            # unbalanced scheduling assigns tasks greedily in the given
            # order.  The finish time is  max_load / (peak / U), which also
            # subsumes the occupancy penalty when there are fewer tasks than
            # units.
            work = np.asarray(kernel.task_work, dtype=np.float64)
            units = device.parallel_units
            total_work = float(work.sum())
            if total_work > 0:
                order = np.argsort(-work) if kernel.balanced else np.arange(work.size)
                loads = np.zeros(units, dtype=np.float64)
                for w in work[order]:
                    loads[loads.argmin()] += w
                max_load_fraction = float(loads.max()) / total_work
            else:
                max_load_fraction = 1.0 / units
            compute_s = (kernel.effective_flops() * max_load_fraction
                         * units / peak)
        else:
            compute_s = kernel.effective_flops() / (peak * max(occupancy, 1e-9))
        memory_s = kernel.bytes_moved / (device.mem_bandwidth_gbps * 1e9)
        time_s = max(compute_s, memory_s)
        if not device.is_gpu:
            # Fork/join cost of one parallel region (thread-pool barrier).
            time_s += (device.sync_overhead_us_per_unit
                       * device.parallel_units * 1e-6)
        if include_launch and device.is_gpu:
            time_s += device.launch_overhead_us * 1e-6
        return time_s

    # -- whole workload ----------------------------------------------------------

    def evaluate(self, workload: Workload) -> CostBreakdown:
        """Latency of a workload, accounting for horizontal fusion groups."""
        per_kernel: Dict[str, float] = {}
        launch_s = 0.0
        # Group horizontally fused kernels: members of the same group share
        # one launch and run concurrently, so the group costs the maximum of
        # its members' compute time when the device has spare units, else
        # the sum.
        groups: Dict[str, List[KernelLaunch]] = {}
        order: List[str] = []
        for kernel in workload.kernels:
            key = kernel.hfused_with or kernel.name
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(kernel)

        total = 0.0
        for key in order:
            members = groups[key]
            times = [self.kernel_seconds(k, include_launch=False) for k in members]
            if len(members) == 1:
                group_time = times[0]
            else:
                tasks = sum(max(int(k.parallel_tasks), 1) for k in members)
                if self.device.is_gpu and tasks <= 4 * self.device.parallel_units:
                    # The fused kernel has spare (or nearly spare) units:
                    # concurrent execution hides the shorter members behind
                    # the longest one.  This is where horizontal fusion
                    # recovers the parallelism lost by operation splitting.
                    group_time = max(times)
                else:
                    # On a CPU (work-conserving scheduling over few cores) or
                    # on an already saturated GPU the members essentially
                    # serialise; fusion only saves launch overhead.
                    group_time = sum(times)
            if self.device.is_gpu:
                group_time += self.device.launch_overhead_us * 1e-6
                launch_s += self.device.launch_overhead_us * 1e-6
            for k, t in zip(members, times):
                per_kernel[k.name] = per_kernel.get(k.name, 0.0) + t
            total += group_time

        copy_s = self.device.copy_time(workload.h2d_bytes)
        dispatch_s = workload.dispatch_overhead_us * 1e-6 * len(workload.kernels)
        total += copy_s + workload.prelude_time_s + dispatch_s
        return CostBreakdown(
            total_s=total,
            per_kernel_s=per_kernel,
            launch_s=launch_s,
            copy_s=copy_s,
            prelude_s=workload.prelude_time_s,
            dispatch_s=dispatch_s,
        )

    def latency_ms(self, workload: Workload) -> float:
        return self.evaluate(workload).total_ms


# ---------------------------------------------------------------------------
# Candidate ranking (the autotuner's analytical pruning hook)
# ---------------------------------------------------------------------------


def rank_workloads(workloads: Sequence[Workload],
                   device: Optional[Device] = None) -> List[int]:
    """Indices of ``workloads`` ordered by modelled latency (fastest first,
    ties kept stable by input order).

    This is the fast pruning stage of :mod:`repro.core.autotune`: every
    candidate schedule point is described as a workload, ranked here, and
    only the analytical top-k ever reach wall-clock measurement.  The
    ranking leans on the monotonicity of the model's terms (more load
    imbalance -> higher latency, fewer launches -> lower latency, more
    occupancy -> lower latency), which ``tests/test_costmodel.py`` pins.
    """
    if device is None:
        from repro.substrates.device import intel_cpu
        device = intel_cpu()
    model = CostModel(device)
    latencies = [model.latency_ms(w) for w in workloads]
    return sorted(range(len(workloads)), key=lambda i: (latencies[i], i))


# ---------------------------------------------------------------------------
# FLOP helpers shared by the operator library and the analysis module
# ---------------------------------------------------------------------------


def gemm_flops(m: float, n: float, k: float) -> float:
    """FLOPs of a single (m x k) @ (k x n) matrix multiplication."""
    return 2.0 * m * n * k


def softmax_flops(rows: float, cols: float) -> float:
    """FLOPs of a row-wise softmax over a (rows x cols) matrix.

    Per element: max-reduce, subtract, exp (costed as ~4 flops), sum-reduce
    and divide -- about 8 flops.
    """
    return 8.0 * rows * cols


def layernorm_flops(rows: float, cols: float) -> float:
    """FLOPs of layer normalisation over the trailing dimension."""
    return 8.0 * rows * cols


def elementwise_flops(count: float, ops_per_element: float = 1.0) -> float:
    return count * ops_per_element
