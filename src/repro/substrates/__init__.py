"""Simulated hardware substrates.

The paper evaluates CoRa on an Nvidia V100 GPU, an Intel CascadeLake CPU and
8- / 64-core ARM Graviton2 CPUs.  None of that hardware (nor CUDA, cuBLAS,
MKL, ...) is available to this reproduction, so the benchmark harness runs
every implementation against an *analytical device model*: a roofline-style
simulator parameterised by peak throughput, memory bandwidth, the number of
parallel execution units, kernel-launch overhead and host-to-device copy
bandwidth.

The model is intentionally simple -- the paper's headline results are driven
by the amount of (wasted) computation each execution strategy performs and
by launch / copy / imbalance overheads, all of which the model captures.
Absolute milliseconds are not expected to match the paper; the *shape* of
each figure (who wins, by roughly what factor, where crossovers fall) is.
"""

from repro.substrates.costmodel import CostModel, KernelLaunch, Workload
from repro.substrates.device import (
    Device,
    arm_cpu_8core,
    arm_cpu_64core,
    intel_cpu,
    v100_gpu,
)

__all__ = [
    "CostModel",
    "KernelLaunch",
    "Workload",
    "Device",
    "v100_gpu",
    "intel_cpu",
    "arm_cpu_8core",
    "arm_cpu_64core",
]
