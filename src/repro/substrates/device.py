"""Simulated devices.

A :class:`Device` is a named bag of hardware parameters plus a couple of
helper methods (`kernel_time`, `copy_time`) used directly by the executor.
The full multi-kernel simulation (launch overheads, load imbalance across
parallel units, horizontal fusion, efficiency classes) lives in
:mod:`repro.substrates.costmodel`.

The preset constructors approximate the four platforms of the paper's
Table 2.  Their absolute numbers are rough by design; what matters is the
*relative* structure: the GPU has massive parallelism and high launch /
copy overheads, the CPUs have little parallelism and none of those
overheads, and the 8-core CPU exposes 8x less parallelism than the 64-core
one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class Device:
    """An analytically modelled execution platform.

    Attributes
    ----------
    name:
        Human-readable platform name.
    peak_gflops:
        Peak single-precision throughput in GFLOP/s.
    mem_bandwidth_gbps:
        Device memory bandwidth in GB/s.
    parallel_units:
        Number of independent execution units (GPU SMs / CPU cores) used to
        model occupancy and load imbalance.
    launch_overhead_us:
        Fixed overhead per kernel launch in microseconds (0 for CPUs).
    h2d_bandwidth_gbps:
        Host-to-device copy bandwidth in GB/s (irrelevant for CPUs).
    h2d_latency_us:
        Fixed latency per host-to-device copy in microseconds.
    is_gpu:
        Whether the device behaves like a massively parallel accelerator.
    sync_overhead_us_per_unit:
        Per-kernel cost (in microseconds, per participating execution unit)
        of forking and joining a parallel region on a CPU -- the OpenMP /
        thread-pool barrier cost.  Zero for GPUs.  This is what makes
        executing a mini-batch as many tiny micro-batches unattractive on
        many-core CPUs (Table 9).
    efficiency:
        Fraction of peak achievable by each implementation class:
        ``"vendor"`` (cuBLAS / MKL hand-tuned kernels), ``"handopt"``
        (hand-written CUDA such as FasterTransformer's custom kernels),
        ``"compiler"`` (CoRa / TVM generated code) and ``"framework"``
        (framework-dispatched kernels with framework overheads).
    """

    name: str
    peak_gflops: float
    mem_bandwidth_gbps: float
    parallel_units: int
    launch_overhead_us: float
    h2d_bandwidth_gbps: float
    h2d_latency_us: float
    is_gpu: bool
    efficiency: Dict[str, float] = field(default_factory=dict)
    sync_overhead_us_per_unit: float = 0.0

    def efficiency_of(self, impl_class: str) -> float:
        return self.efficiency.get(impl_class, 0.6)

    # -- simple single-kernel helpers (used by the executor) -----------------

    def kernel_time(self, flops: float, bytes_moved: float,
                    impl_class: str = "compiler",
                    parallel_tasks: int | None = None) -> float:
        """Roofline time (seconds) of one kernel, including launch overhead."""
        eff = self.efficiency_of(impl_class)
        occupancy = 1.0
        if parallel_tasks is not None and parallel_tasks < self.parallel_units:
            occupancy = max(parallel_tasks, 1) / self.parallel_units
        compute_s = flops / (self.peak_gflops * 1e9 * eff * occupancy)
        memory_s = bytes_moved / (self.mem_bandwidth_gbps * 1e9)
        return max(compute_s, memory_s) + self.launch_overhead_us * 1e-6

    def copy_time(self, nbytes: float) -> float:
        """Host-to-device copy time in seconds (zero-ish for CPUs)."""
        if not self.is_gpu:
            return 0.0
        return self.h2d_latency_us * 1e-6 + nbytes / (self.h2d_bandwidth_gbps * 1e9)

    def __repr__(self) -> str:
        return f"Device({self.name!r}, {self.peak_gflops:.0f} GFLOP/s, {self.parallel_units} units)"


def v100_gpu() -> Device:
    """An Nvidia Tesla V100-like accelerator (Table 2, first row)."""
    return Device(
        name="nvidia-v100",
        peak_gflops=14000.0,
        mem_bandwidth_gbps=900.0,
        parallel_units=80,
        launch_overhead_us=6.0,
        h2d_bandwidth_gbps=12.0,
        h2d_latency_us=8.0,
        is_gpu=True,
        efficiency={
            "vendor": 0.85,
            "handopt": 0.78,
            "compiler": 0.72,
            "framework": 0.70,
        },
    )


def intel_cpu() -> Device:
    """An 8-core / 16-thread Intel CascadeLake-like CPU (Table 2)."""
    return Device(
        name="intel-cascadelake-16t",
        peak_gflops=1100.0,
        mem_bandwidth_gbps=90.0,
        parallel_units=16,
        launch_overhead_us=0.0,
        h2d_bandwidth_gbps=0.0,
        h2d_latency_us=0.0,
        is_gpu=False,
        efficiency={
            "vendor": 0.80,
            "handopt": 0.72,
            "compiler": 0.68,
            "framework": 0.62,
        },
        sync_overhead_us_per_unit=1.0,
    )


def arm_cpu_64core(threads: int = 64) -> Device:
    """A 64-core ARM Graviton2-like CPU (Table 2).

    ``threads`` allows the Figure 27 thread-scaling experiment to model the
    same chip restricted to fewer cores.
    """
    threads = max(1, min(int(threads), 64))
    return Device(
        name=f"arm-graviton2-{threads}core",
        peak_gflops=20.0 * threads,
        mem_bandwidth_gbps=min(200.0, 25.0 + 2.8 * threads),
        parallel_units=threads,
        launch_overhead_us=0.0,
        h2d_bandwidth_gbps=0.0,
        h2d_latency_us=0.0,
        is_gpu=False,
        efficiency={
            "vendor": 0.78,
            "handopt": 0.70,
            "compiler": 0.66,
            "framework": 0.58,
        },
        sync_overhead_us_per_unit=1.2,
    )


def arm_cpu_8core() -> Device:
    """An 8-core ARM Graviton2-like CPU (Table 2)."""
    return arm_cpu_64core(threads=8)
