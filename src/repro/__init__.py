"""repro: a Python reproduction of the CoRa tensor compiler (MLSys 2022).

CoRa is a tensor compiler for *ragged* tensors -- tensors whose inner
dimensions have per-slice variable sizes (e.g. a mini-batch of sentences of
different lengths).  Instead of padding every sequence to the maximum length
(the strategy used by dense tensor compilers and vendor libraries), CoRa
generates code that iterates only over the valid, densely packed data, with
a small amount of user-controlled padding where it helps vectorization.

The package is organised as follows:

``repro.core``
    The compiler itself: named dimensions, extents (uninterpreted length
    functions), the dimension graph, ragged storage layouts and their O(1)
    access lowering, prelude generation (auxiliary arrays), the operator
    description API, scheduling primitives, bounds inference, the loop-nest
    IR, lowering and Python code generation, and the executor.  On top of
    single operators sits the *ragged program graph runtime*: a
    :class:`Program` graph of scheduled operators, the liveness/arena
    planner (:mod:`repro.core.planner`) with optional in-place slab
    sharing for element-wise nodes, and the :class:`Session`, which
    compiles a whole program ahead of time for one raggedness signature
    and executes repeated mini-batches through a pluggable execution
    engine (:mod:`repro.core.engine`): a serial flat dispatch loop, or a
    pipelined engine overlapping host and kernel nodes over a worker
    pool, both over reusable arena buffers.

``repro.substrates``
    Simulated hardware devices (GPU-like and CPU-like) and the analytical
    cost model used to report latencies in the benchmark harness.

``repro.ops``
    A library of ragged operators built on the core: elementwise ops,
    variable-sized batched gemm (vgemm), triangular matrix ops (trmm,
    tradd, trmul), ragged softmax, layer normalisation, the attention
    operators (QKT, AttnV, masked SDPA) and fused-vloop projections.

``repro.baselines``
    The execution strategies CoRa is compared against in the paper:
    fully padded dense execution (PyTorch / TensorFlow / FasterTransformer),
    the partially padded FT-Eff pipeline, micro-batched execution (TF-UB /
    PT-UB) and a Taco-like sparse-compiler baseline using CSR / BCSR.

``repro.serving``
    The serving front end: a request queue and a continuous-batching
    scheduler that groups incoming ragged sequences by raggedness
    signature (optionally padding within a bucket tolerance) to maximise
    compiled-program reuse across mini-batches.

``repro.models``
    The transformer encoder layer and multi-head attention module assembled
    from CoRa operators, with equivalent baseline implementations.

``repro.data``
    Synthetic sequence-length workload generators matched to the NLP
    datasets used in the paper's evaluation (Table 3).

``repro.analysis``
    Analytical FLOP and memory models used for Figures 2, 19 and 22.
"""

from repro.core.dims import Dim
from repro.core.errors import (
    CompileError,
    CoraError,
    DeadlineExceeded,
    ExecutionError,
    QueueFull,
)
from repro.core.extents import ConstExtent, Extent, VarExtent
from repro.core.ragged_tensor import RaggedTensor
from repro.core.storage import RaggedLayout
from repro.core.operator import RaggedOperator, compute, input_tensor, placeholder
from repro.core.schedule import Schedule
from repro.core.codegen import CodegenBackend, ScalarBackend, get_backend
from repro.core.codegen_vector import VectorBackend
from repro.core.engine import (
    ExecutionEngine,
    PipelinedEngine,
    ProcessPoolEngine,
    SerialEngine,
)
from repro.core.executor import Executor
from repro.core.planner import ProgramPlan, ShardSpec, plan_program, plan_shards
from repro.core.program import (
    MergeInfo,
    Program,
    ProgramError,
    build_from_recipe,
    merge_programs,
    register_program_builder,
)
from repro.core.session import (
    CompiledProgram,
    Session,
    ShardedProgram,
    default_session,
    shard_program,
)
from repro.serving import (
    BatchScheduler,
    FailedResult,
    FaultInjector,
    Request,
    RequestQueue,
    RequestState,
)

__version__ = "0.1.0"

__all__ = [
    "Dim",
    "Extent",
    "ConstExtent",
    "VarExtent",
    "RaggedTensor",
    "RaggedLayout",
    "RaggedOperator",
    "compute",
    "input_tensor",
    "placeholder",
    "Schedule",
    "CodegenBackend",
    "ScalarBackend",
    "VectorBackend",
    "get_backend",
    "Executor",
    "ExecutionEngine",
    "SerialEngine",
    "PipelinedEngine",
    "ProcessPoolEngine",
    "Program",
    "ProgramError",
    "ProgramPlan",
    "MergeInfo",
    "merge_programs",
    "register_program_builder",
    "build_from_recipe",
    "plan_program",
    "plan_shards",
    "ShardSpec",
    "ShardedProgram",
    "shard_program",
    "Session",
    "CompiledProgram",
    "default_session",
    "BatchScheduler",
    "Request",
    "RequestQueue",
    "RequestState",
    "FaultInjector",
    "FailedResult",
    "CoraError",
    "CompileError",
    "ExecutionError",
    "DeadlineExceeded",
    "QueueFull",
    "__version__",
]
