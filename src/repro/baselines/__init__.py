"""Baseline execution strategies CoRa is compared against.

* :mod:`repro.baselines.dense_padded` -- fully padded framework execution
  (PyTorch / TensorFlow style).
* :mod:`repro.baselines.ft` -- FasterTransformer (FT) and its
  EffectiveTransformer variant (FT-Eff).
* :mod:`repro.baselines.microbatch` -- micro-batched execution (TF-UB /
  PT-UB of Table 9): trade batch parallelism for less padding.
* :mod:`repro.baselines.sparse_compiler` -- a Taco-like sparse tensor
  compiler baseline using CSR / BCSR storage (Table 6).
"""

from repro.baselines import dense_padded, ft, microbatch, sparse_compiler

__all__ = ["dense_padded", "ft", "microbatch", "sparse_compiler"]
