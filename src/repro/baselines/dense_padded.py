"""Fully padded framework baselines (PyTorch / TensorFlow style execution).

A deep-learning framework executing a ragged mini-batch pads every sequence
to the batch maximum, dispatches one (vendor-library) kernel per framework
operator, and pays a per-operator dispatch overhead.  These builders wrap
the strategy implementations in :mod:`repro.models.transformer` and add the
framework-specific knobs used by the CPU experiments (Tables 5 and 9,
Figure 27): TensorFlow scales reasonably with cores, while PyTorch's MHA
scales poorly beyond a handful of threads on the 64-core ARM CPU.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.models.config import PAPER_BASE_CONFIG, TransformerConfig
from repro.models.transformer import encoder_layer_workload, mha_workload
from repro.substrates.costmodel import CostModel, Workload
from repro.substrates.device import Device


def framework_encoder_workload(lengths: Sequence[int],
                               config: TransformerConfig = PAPER_BASE_CONFIG,
                               on_gpu: bool = True) -> Workload:
    """A fully padded framework execution of one encoder layer."""
    return encoder_layer_workload(lengths, strategy="pytorch", config=config,
                                  on_gpu=on_gpu)


def framework_mha_workload(lengths: Sequence[int],
                           framework: str = "tf",
                           config: TransformerConfig = PAPER_BASE_CONFIG,
                           ) -> Workload:
    """A fully padded framework execution of the MHA module."""
    return mha_workload(lengths, strategy=framework, config=config, on_gpu=False)


#: Threads beyond which PyTorch's ARM CPU MHA stops scaling (Figure 27).
PYTORCH_SCALING_KNEE = 8
#: Per-extra-thread contention penalty applied to PyTorch beyond the knee.
PYTORCH_CONTENTION = 0.35


def framework_mha_latency_ms(lengths: Sequence[int], device: Device,
                             framework: str = "tf",
                             config: TransformerConfig = PAPER_BASE_CONFIG,
                             ) -> float:
    """Latency of a framework MHA execution, including the PyTorch
    thread-scaling pathology observed in the paper (Figure 27, Table 9)."""
    workload = framework_mha_workload(lengths, framework=framework, config=config)
    latency = CostModel(device).latency_ms(workload)
    if framework.lower() in ("pt", "pytorch") and not device.is_gpu:
        threads = device.parallel_units
        if threads > PYTORCH_SCALING_KNEE:
            # PyTorch's intra-op thread pool contends on the many-core part:
            # latency *increases* with the thread count beyond the knee.
            over = threads - PYTORCH_SCALING_KNEE
            # What PyTorch would achieve with only `knee` threads:
            knee_scale = threads / PYTORCH_SCALING_KNEE
            latency = latency * knee_scale * (1.0 + PYTORCH_CONTENTION * over / PYTORCH_SCALING_KNEE)
    return latency
