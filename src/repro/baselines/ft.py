"""FasterTransformer baselines (FT and FT-Eff).

FasterTransformer is NVIDIA's heavily hand-optimized transformer
implementation: cuBLAS gemms plus hand-written CUDA kernels for the rest.
The *EffectiveTransformer* optimisation (FT-Eff) removes padding for every
operator outside scaled dot-product attention by packing the valid tokens
before the linear operators and re-adding padding before SDPA; the plain FT
configuration keeps full padding everywhere (paper Figure 3, Section 7.2).

Both builders delegate to :func:`repro.models.transformer.encoder_layer_workload`.
"""

from __future__ import annotations

from typing import Sequence

from repro.models.config import PAPER_BASE_CONFIG, TransformerConfig
from repro.models.transformer import encoder_layer_workload
from repro.substrates.costmodel import Workload


def ft_workload(lengths: Sequence[int],
                config: TransformerConfig = PAPER_BASE_CONFIG) -> Workload:
    """FasterTransformer without the EffectiveTransformer optimisation."""
    return encoder_layer_workload(lengths, strategy="ft", config=config)


def ft_eff_workload(lengths: Sequence[int],
                    config: TransformerConfig = PAPER_BASE_CONFIG) -> Workload:
    """FasterTransformer with the EffectiveTransformer optimisation (FT-Eff)."""
    return encoder_layer_workload(lengths, strategy="ft-eff", config=config)


def kernel_count(workload: Workload) -> int:
    """Number of kernel launches in a workload (CoRa: 9, FasterTransformer: 12)."""
    return len(workload.kernels)
