"""Micro-batched execution (the TF-UB / PT-UB configurations of Table 9).

On devices with limited parallelism (CPUs) a framework can trade batch
parallelism for less padding: sort the mini-batch by sequence length, split
it into micro-batches of ``u`` sequences, and pad each micro-batch only to
*its own* maximum length (paper Figure 26).  The optimal micro-batch size is
found by searching over powers of two, exactly as in Section D.8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np


@dataclass
class MicroBatchResult:
    """Result of the micro-batch search for one workload."""

    best_latency_ms: float
    best_micro_batch: int
    per_size_ms: Dict[int, float]

    def speedup_over_full_batch(self) -> float:
        full = self.per_size_ms.get(max(self.per_size_ms), self.best_latency_ms)
        return full / self.best_latency_ms if self.best_latency_ms else 1.0


def split_into_microbatches(lengths: Sequence[int], micro_batch: int,
                            sort: bool = True) -> List[np.ndarray]:
    """Sort (optionally) and split a mini-batch into micro-batches."""
    lengths = np.asarray(lengths, dtype=np.int64)
    if micro_batch <= 0:
        raise ValueError("micro-batch size must be positive")
    ordered = np.sort(lengths) if sort else lengths.copy()
    return [ordered[i:i + micro_batch]
            for i in range(0, ordered.size, micro_batch)]


def candidate_sizes(batch_size: int, minimum: int = 2) -> List[int]:
    """Micro-batch sizes searched: powers of two from ``minimum`` to the batch size."""
    sizes = []
    u = minimum
    while u < batch_size:
        sizes.append(u)
        u *= 2
    sizes.append(batch_size)
    return sizes


def microbatched_latency(
    lengths: Sequence[int],
    latency_fn: Callable[[np.ndarray], float],
    minimum: int = 2,
    sort: bool = True,
) -> MicroBatchResult:
    """Find the best micro-batch size for a workload.

    ``latency_fn`` maps the lengths of one (padded-to-its-own-max)
    micro-batch to a latency in milliseconds; the micro-batches of a
    mini-batch execute sequentially, so their latencies add.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    per_size: Dict[int, float] = {}
    for size in candidate_sizes(lengths.size, minimum=minimum):
        total = 0.0
        for chunk in split_into_microbatches(lengths, size, sort=sort):
            total += float(latency_fn(chunk))
        per_size[size] = total
    best_size = min(per_size, key=lambda s: per_size[s])
    return MicroBatchResult(
        best_latency_ms=per_size[best_size],
        best_micro_batch=best_size,
        per_size_ms=per_size,
    )
