"""A Taco-like sparse tensor compiler baseline (Section 7.5, Table 6).

Taco stores tensors in general sparse formats (CSR, blocked CSR) and
generates kernels that traverse explicit index arrays.  For *ragged* data
this is wasteful on two counts the paper calls out:

* per-non-zero column indices are stored and traversed even though within a
  ragged slice the data is contiguous (the index is recoverable from a
  single cumulative offset);
* optimisation decisions tuned for genuinely sparse data (tiny rows,
  scattered non-zeros) fit triangular / ragged matrices poorly, and padding
  cannot be expressed, so conditional checks remain in the inner loops.

This module provides real CSR / BCSR data structures and numerically correct
kernels for the Table 6 operators (trmm, tradd, trmul), plus workload
builders whose index-traversal overheads reproduce the relative slowdowns of
Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.ops.trmm import triangular_elements
from repro.substrates.costmodel import KernelLaunch, Workload


# ---------------------------------------------------------------------------
# CSR / BCSR storage
# ---------------------------------------------------------------------------


@dataclass
class CSRMatrix:
    """Compressed sparse row storage of a matrix."""

    shape: Tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        dense = np.asarray(dense)
        rows, cols = dense.shape
        indptr = np.zeros(rows + 1, dtype=np.int64)
        indices_list = []
        data_list = []
        for r in range(rows):
            nz = np.nonzero(dense[r])[0]
            indices_list.append(nz)
            data_list.append(dense[r, nz])
            indptr[r + 1] = indptr[r] + nz.size
        return cls(
            shape=(rows, cols),
            indptr=indptr,
            indices=np.concatenate(indices_list) if indices_list else np.zeros(0, np.int64),
            data=np.concatenate(data_list).astype(np.float32) if data_list else np.zeros(0, np.float32),
        )

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float32)
        for r in range(self.shape[0]):
            start, end = self.indptr[r], self.indptr[r + 1]
            out[r, self.indices[start:end]] = self.data[start:end]
        return out

    @property
    def index_bytes(self) -> int:
        """Bytes of auxiliary index data (indptr + per-non-zero indices)."""
        return int(self.indptr.nbytes + self.indices.nbytes)


@dataclass
class BCSRMatrix:
    """Blocked CSR storage: dense ``block x block`` tiles indexed CSR-style."""

    shape: Tuple[int, int]
    block: int
    indptr: np.ndarray
    indices: np.ndarray
    blocks: np.ndarray  # (nblocks, block, block)

    @classmethod
    def from_dense(cls, dense: np.ndarray, block: int = 32) -> "BCSRMatrix":
        dense = np.asarray(dense, dtype=np.float32)
        rows, cols = dense.shape
        brows = (rows + block - 1) // block
        bcols = (cols + block - 1) // block
        padded = np.zeros((brows * block, bcols * block), dtype=np.float32)
        padded[:rows, :cols] = dense
        indptr = np.zeros(brows + 1, dtype=np.int64)
        indices_list = []
        blocks_list = []
        for br in range(brows):
            row_blocks = []
            for bc in range(bcols):
                tile = padded[br * block:(br + 1) * block,
                              bc * block:(bc + 1) * block]
                if np.any(tile != 0.0):
                    row_blocks.append(bc)
                    blocks_list.append(tile.copy())
            indices_list.extend(row_blocks)
            indptr[br + 1] = indptr[br] + len(row_blocks)
        blocks = (np.stack(blocks_list) if blocks_list
                  else np.zeros((0, block, block), dtype=np.float32))
        return cls(shape=(rows, cols), block=block, indptr=indptr,
                   indices=np.asarray(indices_list, dtype=np.int64), blocks=blocks)

    @property
    def nnz_blocks(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def stored_elements(self) -> int:
        return int(self.blocks.size)

    def to_dense(self) -> np.ndarray:
        rows, cols = self.shape
        brows = (rows + self.block - 1) // self.block
        bcols = (cols + self.block - 1) // self.block
        out = np.zeros((brows * self.block, bcols * self.block), dtype=np.float32)
        ptr = 0
        for br in range(brows):
            for k in range(self.indptr[br], self.indptr[br + 1]):
                bc = int(self.indices[k])
                out[br * self.block:(br + 1) * self.block,
                    bc * self.block:(bc + 1) * self.block] = self.blocks[k]
        return out[:rows, :cols]


# ---------------------------------------------------------------------------
# Taco-style kernels (numerically correct, index-traversal based)
# ---------------------------------------------------------------------------


def csr_spmm(a: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """``A @ B`` with ``A`` in CSR: per-row gather over explicit indices."""
    rows = a.shape[0]
    out = np.zeros((rows, dense.shape[1]), dtype=np.float32)
    for r in range(rows):
        start, end = int(a.indptr[r]), int(a.indptr[r + 1])
        cols = a.indices[start:end]
        vals = a.data[start:end]
        if cols.size:
            out[r] = vals @ dense[cols]
    return out


def bcsr_spmm(a: BCSRMatrix, dense: np.ndarray) -> np.ndarray:
    """``A @ B`` with ``A`` in blocked CSR."""
    rows = a.shape[0]
    block = a.block
    brows = (rows + block - 1) // block
    padded_cols = ((a.shape[1] + block - 1) // block) * block
    dense_padded = np.zeros((padded_cols, dense.shape[1]), dtype=np.float32)
    dense_padded[:dense.shape[0]] = dense
    out = np.zeros((brows * block, dense.shape[1]), dtype=np.float32)
    for br in range(brows):
        acc = np.zeros((block, dense.shape[1]), dtype=np.float32)
        for k in range(int(a.indptr[br]), int(a.indptr[br + 1])):
            bc = int(a.indices[k])
            acc += a.blocks[k] @ dense_padded[bc * block:(bc + 1) * block]
        out[br * block:(br + 1) * block] = acc
    return out[:rows]


def csr_elementwise(a: CSRMatrix, b: CSRMatrix, op: str) -> np.ndarray:
    """Elementwise add (union of patterns) or multiply (intersection) in CSR.

    Taco must merge the two index streams because it cannot assume the
    operands share a sparsity pattern (paper Section D.4); the result is
    returned densely, as in the paper's Taco implementations.
    """
    rows, cols = a.shape
    out = np.zeros((rows, cols), dtype=np.float32)
    for r in range(rows):
        a_cols = a.indices[a.indptr[r]:a.indptr[r + 1]]
        a_vals = a.data[a.indptr[r]:a.indptr[r + 1]]
        b_cols = b.indices[b.indptr[r]:b.indptr[r + 1]]
        b_vals = b.data[b.indptr[r]:b.indptr[r + 1]]
        if op == "add":
            out[r, a_cols] += a_vals
            out[r, b_cols] += b_vals
        elif op == "mul":
            # two-pointer intersection of the sorted index streams
            i = j = 0
            while i < a_cols.size and j < b_cols.size:
                if a_cols[i] == b_cols[j]:
                    out[r, a_cols[i]] = a_vals[i] * b_vals[j]
                    i += 1
                    j += 1
                elif a_cols[i] < b_cols[j]:
                    i += 1
                else:
                    j += 1
        else:
            raise ValueError(f"unknown elementwise op {op!r}")
    return out


# ---------------------------------------------------------------------------
# Workload builders for Table 6
# ---------------------------------------------------------------------------

def _csr_traversal_overhead(n: int) -> float:
    """Per-FLOP overhead of gather-based CSR traversal, growing with the row
    length (longer gathers thrash caches and defeat coalescing).

    Calibrated so the Table 6 trmm slowdowns grow from ~1.5x at n=128 to
    ~90x at n=8192, as in the paper.
    """
    return 2.0 + n / 95.0


def _bcsr_traversal_overhead(n: int) -> float:
    """Per-FLOP overhead of blocked-CSR traversal (amortised over 32x32
    blocks, but partial blocks are padded and bound checks remain)."""
    return 1.0 + n / 160.0


#: Scalar-merge cost per valid element of Taco's elementwise union / intersection
#: iteration (two index streams, comparisons and advances per element).
_MERGE_FLOPS_PER_ELEMENT = {"add": 45.0, "mul": 30.0}


def taco_trmm_workload(n: int, fmt: str = "csr", tile: int = 64) -> Workload:
    """Taco's trmm (triangular times dense) in CSR or BCSR."""
    elements = float(triangular_elements(n))
    flops = 2.0 * elements * n
    if fmt == "csr":
        overhead = _csr_traversal_overhead(n)
        impl = "framework"
    elif fmt == "bcsr":
        overhead = _bcsr_traversal_overhead(n)
        impl = "framework"
        # BCSR pads partial blocks of the triangle.
        block = 32
        padded_rows = ((n + block - 1) // block) * block
        flops = 2.0 * (padded_rows * (padded_rows + block) / 2.0) * n
    else:
        raise ValueError(f"unknown format {fmt!r}")
    kernel = KernelLaunch(
        name=f"taco-trmm-{fmt}",
        flops=flops,
        bytes_moved=(elements + n * n) * 4.0 * 2.0,
        impl_class=impl,
        parallel_tasks=max((n // tile), 1) * max((n // tile), 1),
        indirect_access_overhead=overhead,
    )
    return Workload(name=f"Taco-{fmt.upper()} trmm", kernels=[kernel])


def taco_elementwise_workload(n: int, op: str, fmt: str = "csr") -> Workload:
    """Taco's tradd / trmul in CSR or BCSR (tradd unavailable in BCSR, as in
    the paper, because the union iteration cannot be scheduled that way)."""
    if fmt == "bcsr" and op == "add":
        raise ValueError("Taco's BCSR schedule does not support tradd "
                         "(union iteration); see Table 6")
    elements = float(triangular_elements(n))
    overhead = 0.0
    if fmt == "csr":
        # Scalar two-pointer merge over the explicit index streams: branchy,
        # uncoalesced, effectively serial within each row -- far below the
        # device's vector peak, modelled as a large per-element cost.
        flops = elements * _MERGE_FLOPS_PER_ELEMENT[op]
        bytes_moved = 3.0 * elements * 4.0 + 2.0 * elements * 8.0
        overhead = 40.0 if op == "add" else 28.0
    else:
        # BCSR intersection works block-by-block with dense tiles, but pads
        # partial blocks, reads the block index arrays and keeps bound
        # checks in the inner loops.
        block = 32
        padded = ((n + block - 1) // block) * block
        stored = padded * (padded + block) / 2.0
        flops = stored * 2.0
        bytes_moved = 3.0 * stored * 4.0
        overhead = 1.0
    kernel = KernelLaunch(
        name=f"taco-tr{op}-{fmt}",
        flops=flops,
        bytes_moved=bytes_moved,
        impl_class="framework",
        parallel_tasks=max(int(elements // 4096), 1),
        indirect_access_overhead=overhead,
    )
    return Workload(name=f"Taco-{fmt.upper()} tr{op}", kernels=[kernel])
