"""Forward-activation memory accounting (Section D.5 / Figure 19).

The paper computes, analytically, the total size of the forward activations
of one encoder layer with and without ragged tensor storage, taking CoRa's
partial padding into account.  Activations are dominated by:

* the per-token hidden / feed-forward tensors (size linear in the sequence
  length): the QKV projection output, the attention output, the two
  feed-forward activations, residual/bias/layernorm intermediates;
* the per-head attention matrices (size quadratic in the sequence length):
  the QK^T scores and the softmax output.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.analysis.flops import cora_padded_lengths, padded_lengths
from repro.models.config import PAPER_BASE_CONFIG, TransformerConfig

_BYTES_PER_ELEMENT = 4  # single precision


def _activation_elements(lengths: np.ndarray, config: TransformerConfig,
                         attention_lengths: np.ndarray) -> float:
    """Number of forward-activation elements of one encoder layer."""
    s = lengths.astype(np.float64)
    sq = attention_lengths.astype(np.float64)
    h = config.hidden_size
    f = config.ff_size
    a = config.num_heads
    # Linear-in-s activations: QKV (3H), attention output (H), proj2 output
    # (H), FF1 output (F), FF2 output (H), two layernorm outputs (2H).
    linear = s * (3 * h + h + h + f + h + 2 * h)
    # Quadratic-in-s activations: QK^T scores and softmax output, per head.
    quadratic = 2.0 * a * np.square(sq)
    return float(linear.sum() + quadratic.sum())


def activation_memory_bytes(lengths: Sequence[int],
                            config: TransformerConfig = PAPER_BASE_CONFIG,
                            ragged: bool = True) -> float:
    """Forward-activation bytes of one encoder layer.

    With ``ragged=True`` the tensors use CoRa's ragged storage (including
    its partial padding); with ``ragged=False`` every tensor is padded to
    the batch maximum sequence length.
    """
    s = np.asarray(lengths, dtype=np.int64)
    if ragged:
        padded = cora_padded_lengths(s, config)
        elements = _activation_elements(padded["linear"], config, padded["sdpa"])
    else:
        dense = padded_lengths(s)
        elements = _activation_elements(dense, config, dense)
    return elements * _BYTES_PER_ELEMENT


def memory_savings_ratio(lengths: Sequence[int],
                         config: TransformerConfig = PAPER_BASE_CONFIG) -> float:
    """Dense-to-ragged forward-activation memory ratio (>= 1)."""
    dense = activation_memory_bytes(lengths, config, ragged=False)
    ragged = activation_memory_bytes(lengths, config, ragged=True)
    return dense / ragged


def encoder_arena_plan(lengths: Sequence[int],
                       config: TransformerConfig = PAPER_BASE_CONFIG,
                       masked: bool = False,
                       inplace: bool = False) -> "ProgramPlan":
    """The liveness-planned arena layout of the encoder program.

    Declares the encoder layer as a ragged program (zero weights -- only
    the raggedness signature matters for buffer sizes) and runs the
    planner over it, without compiling any kernels.  ``inplace=True``
    lets element-wise nodes (residual adds, activations) share their
    dying input's slab instead of double-buffering.
    """
    from repro.core.planner import plan_program
    from repro.models.transformer import EncoderWeights, build_encoder_program

    program = build_encoder_program(lengths, EncoderWeights.zeros(config),
                                    config, masked=masked)
    return plan_program(program, inplace=inplace)


def encoder_stack_arena_plan(lengths: Sequence[int],
                             config: TransformerConfig = PAPER_BASE_CONFIG,
                             n_layers: int = 1,
                             masked: bool = False,
                             inplace: bool = False) -> "ProgramPlan":
    """The liveness-planned arena layout of an N-layer encoder stack.

    One program spans every layer, so the planner's liveness analysis
    lets layer ``k + 1`` reuse the slabs of layer ``k``'s dead
    intermediates -- peak bytes stay near one layer's working set
    instead of growing linearly in N.  ``inplace=True`` additionally
    aliases element-wise outputs onto their dying inputs' slabs.
    """
    from repro.core.planner import plan_program
    from repro.models.transformer import (
        EncoderWeights,
        build_encoder_stack_program,
    )

    program = build_encoder_stack_program(
        lengths, EncoderWeights.zeros(config), config, masked=masked,
        n_layers=n_layers)
    return plan_program(program, inplace=inplace)


def intermediate_memory_report(lengths: Sequence[int],
                               config: TransformerConfig = PAPER_BASE_CONFIG,
                               masked: bool = False,
                               n_layers: int = 1) -> Dict[str, float]:
    """Intermediate-buffer memory of an encoder stack, from the planner.

    Unlike :func:`activation_memory_bytes` (which analytically sums every
    forward activation, the Figure 19 accounting), this reads the *planned
    arena sizes* of the program runtime: ``per_op_bytes`` is what op-by-op
    execution allocates (one buffer per intermediate value), ``arena_bytes``
    is the peak after liveness-driven slab reuse.  With ``n_layers > 1``
    the whole stack is planned as one program; ``per_layer_sum_bytes``
    reports what N independent per-layer arena plans would reserve, and
    ``cross_layer_savings`` the fraction of that the stacked plan avoids.
    The report also plans the same program with in-place scheduling
    (element-wise nodes aliasing their dying inputs' slabs):
    ``arena_bytes_inplace`` / ``inplace_savings`` quantify what that
    sharing cuts below the double-buffered arena, and ``inplace_values``
    counts the aliased slabs.
    """
    if n_layers == 1:
        plan = encoder_arena_plan(lengths, config, masked=masked)
        plan_ip = encoder_arena_plan(lengths, config, masked=masked,
                                     inplace=True)
        per_layer_sum = float(plan.arena_bytes)
    else:
        plan = encoder_stack_arena_plan(lengths, config, n_layers=n_layers,
                                        masked=masked)
        plan_ip = encoder_stack_arena_plan(lengths, config,
                                           n_layers=n_layers, masked=masked,
                                           inplace=True)
        single = encoder_arena_plan(lengths, config, masked=masked)
        per_layer_sum = float(single.arena_bytes) * n_layers
    return {
        "per_op_bytes": float(plan.naive_bytes),
        "arena_bytes": float(plan.arena_bytes),
        "arena_bytes_inplace": float(plan_ip.arena_bytes),
        "peak_live_bytes": float(plan.peak_live_bytes),
        "per_layer_sum_bytes": per_layer_sum,
        "cross_layer_savings": (1.0 - plan.arena_bytes / per_layer_sum
                                if per_layer_sum else 0.0),
        "num_values": float(plan.num_values),
        "num_slabs": float(plan.num_slabs),
        "inplace_values": float(plan_ip.inplace_values),
        "inplace_savings": (1.0 - plan_ip.arena_bytes / plan.arena_bytes
                            if plan.arena_bytes else 0.0),
        "savings": plan.reuse_savings,
    }


def memory_report(lengths_by_dataset: Dict[str, Sequence[int]],
                  config: TransformerConfig = PAPER_BASE_CONFIG) -> Dict[str, Dict[str, float]]:
    """Per-dataset dense vs ragged activation memory (Figure 19)."""
    report: Dict[str, Dict[str, float]] = {}
    for name, lengths in lengths_by_dataset.items():
        dense = activation_memory_bytes(lengths, config, ragged=False)
        ragged = activation_memory_bytes(lengths, config, ragged=True)
        report[name] = {
            "dense_bytes": dense,
            "ragged_bytes": ragged,
            "relative": ragged / dense,
            "savings": dense / ragged,
        }
    return report
