"""Analytical FLOP models of the transformer encoder layer.

These are the "computed analytically" quantities behind Figure 2 (wasted
computation due to padding), Figure 22 (overhead of CoRa's partial padding)
and the relative-computation discussion of Section 7.2.

The encoder layer operators and their per-sequence FLOP counts, for a
sequence of length ``s`` with hidden size ``H``, ``A`` heads, head size
``H/A`` and feed-forward size ``F``:

===========  =====================================================
Operator      FLOPs
===========  =====================================================
QKV Proj      ``3 * 2 s H H``   (linear in ``s``)
QK^T          ``2 s^2 H``       (quadratic in ``s``)
Softmax       ``~8 A s^2``
AttnV         ``2 s^2 H``
Proj2         ``2 s H H``
FF1           ``2 s H F``
FF2           ``2 s F H``
Bias/residual/layernorm  ``~14 s H + 8 s F`` (small, linear)
===========  =====================================================
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.extents import ceil_to
from repro.models.config import PAPER_BASE_CONFIG, TransformerConfig


def _as_lengths(lengths: Sequence[int]) -> np.ndarray:
    arr = np.asarray(lengths, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("lengths must be a non-empty 1-D sequence")
    return arr


def attention_flops(lengths: Sequence[int],
                    config: TransformerConfig = PAPER_BASE_CONFIG,
                    masked: bool = False) -> float:
    """FLOPs of the scaled dot-product attention operators (QK^T, softmax, AttnV).

    With ``masked=True`` only the lower-triangular half of each attention
    matrix is computed (the masked MHA of a decoder, Section D.3), halving
    the quadratic terms.
    """
    s = _as_lengths(lengths)
    h = config.hidden_size
    a = config.num_heads
    quad = np.square(s)
    factor = 0.5 if masked else 1.0
    qkt = 2.0 * quad * h * factor
    softmax = 8.0 * a * quad * factor
    attnv = 2.0 * quad * h * factor
    return float((qkt + softmax + attnv).sum())


def mha_flops(lengths: Sequence[int],
              config: TransformerConfig = PAPER_BASE_CONFIG,
              masked: bool = False) -> float:
    """FLOPs of the full multi-head attention module (projections + SDPA)."""
    s = _as_lengths(lengths)
    h = config.hidden_size
    linear = (3 * 2.0 * s * h * h) + (2.0 * s * h * h)  # QKV proj + output proj
    return float(linear.sum()) + attention_flops(lengths, config, masked=masked)


def encoder_layer_flops(lengths: Sequence[int],
                        config: TransformerConfig = PAPER_BASE_CONFIG,
                        masked: bool = False) -> float:
    """FLOPs of one transformer encoder layer for the given sequence lengths."""
    s = _as_lengths(lengths)
    h = config.hidden_size
    f = config.ff_size
    ff = 2.0 * s * h * f + 2.0 * s * f * h
    small = 14.0 * s * h + 8.0 * s * f
    return mha_flops(lengths, config, masked=masked) + float((ff + small).sum())


def padded_lengths(lengths: Sequence[int], pad_to: Optional[int] = None) -> np.ndarray:
    """Replace every length by the batch maximum (full padding)."""
    s = np.asarray(lengths, dtype=np.int64)
    target = int(s.max()) if pad_to is None else int(pad_to)
    return np.full(s.shape, target, dtype=np.int64)


def wasted_computation_ratio(lengths: Sequence[int],
                             config: TransformerConfig = PAPER_BASE_CONFIG,
                             ) -> float:
    """Ratio of fully padded to unpadded encoder-layer FLOPs (Figure 2)."""
    dense = encoder_layer_flops(padded_lengths(lengths), config)
    ragged = encoder_layer_flops(lengths, config)
    return dense / ragged


def cora_padded_lengths(lengths: Sequence[int],
                        config: TransformerConfig = PAPER_BASE_CONFIG,
                        ) -> Dict[str, np.ndarray]:
    """The (partially padded) lengths CoRa's schedules actually compute with.

    Returns the per-sequence lengths used by the quadratic SDPA operators
    (each padded to ``loop_pad``) and the bulk-padded lengths used by the
    fused linear operators (total padded to a multiple of ``bulk_pad`` by
    appending a padding "sequence", Section 7.2).
    """
    s = np.asarray(lengths, dtype=np.int64)
    sdpa = ceil_to(s, config.loop_pad)
    total = int(s.sum())
    bulk_total = int(ceil_to(total, config.bulk_pad))
    extra = bulk_total - total
    linear = np.concatenate([s, np.asarray([extra], dtype=np.int64)]) if extra else s.copy()
    return {"sdpa": sdpa, "linear": linear}


def partial_padding_overhead(lengths: Sequence[int],
                             config: TransformerConfig = PAPER_BASE_CONFIG,
                             ) -> Dict[str, float]:
    """Relative encoder-layer computation for Figure 22.

    Returns the FLOPs of the fully padded ("dense"), CoRa partially padded
    ("actual") and unpadded ("ideal") executions, each normalised to the
    ideal case.
    """
    s = np.asarray(lengths, dtype=np.int64)
    ideal = encoder_layer_flops(s, config)
    dense = encoder_layer_flops(padded_lengths(s), config)

    padded = cora_padded_lengths(s, config)
    h = config.hidden_size
    f = config.ff_size
    lin = padded["linear"].astype(np.float64)
    linear_flops = float(((3 * 2.0 * lin * h * h) + (2.0 * lin * h * h)
                          + (2.0 * lin * h * f + 2.0 * lin * f * h)
                          + (14.0 * lin * h + 8.0 * lin * f)).sum())
    actual = linear_flops + attention_flops(padded["sdpa"], config)
    return {
        "dense": dense / ideal,
        "actual": actual / ideal,
        "ideal": 1.0,
    }


def masked_sdpa_flops(lengths: Sequence[int],
                      config: TransformerConfig = PAPER_BASE_CONFIG,
                      strategy: str = "nopad") -> float:
    """FLOPs of the masked SDPA module under the three Figure 18 strategies.

    * ``"nopad"``  -- both vloops partially padded (CoRa-NoPad): triangular.
    * ``"pad"``    -- the inner (row-length) vloop fully padded (CoRa-Pad):
      rectangular per sequence, ragged across the batch.
    * ``"dense"``  -- both vloops fully padded (PyTorch): rectangular at the
      batch maximum.
    """
    s = np.asarray(lengths, dtype=np.float64)
    if strategy == "nopad":
        return attention_flops(np.asarray(lengths), config, masked=True)
    if strategy == "pad":
        return attention_flops(np.asarray(lengths), config, masked=False)
    if strategy == "dense":
        return attention_flops(padded_lengths(lengths), config, masked=False)
    raise ValueError(f"unknown masked-SDPA strategy {strategy!r}")
