"""Analytical models: FLOP counting and activation-memory accounting."""

from repro.analysis.flops import (
    attention_flops,
    encoder_layer_flops,
    mha_flops,
    partial_padding_overhead,
    wasted_computation_ratio,
)
from repro.analysis.memory import activation_memory_bytes, memory_savings_ratio

__all__ = [
    "encoder_layer_flops",
    "mha_flops",
    "attention_flops",
    "wasted_computation_ratio",
    "partial_padding_overhead",
    "activation_memory_bytes",
    "memory_savings_ratio",
]
