"""Ragged requests and the arrival queue of the serving front end.

A :class:`Request` is one variable-length sequence (its ``(length,
hidden)`` activation matrix) waiting to be batched; the
:class:`RequestQueue` holds requests in arrival order.  Batch *formation*
policy -- how many requests to take, how to bucket their lengths into a
raggedness signature -- lives in :mod:`repro.serving.scheduler`; the
queue itself is a plain FIFO so arrival order is preserved and every
request is handed out exactly once.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Sequence

import numpy as np


@dataclass(frozen=True, eq=False)
class Request:
    """One ragged sequence awaiting encoder execution.

    ``eq=False``: requests compare (and hash) by identity -- the
    generated field-wise ``__eq__`` would compare the ``hidden`` array
    element-wise and raise on any multi-element sequence.
    """

    request_id: int
    #: the ``(length, hidden_size)`` activation matrix of the sequence
    hidden: np.ndarray

    @property
    def length(self) -> int:
        return int(self.hidden.shape[0])


def bucketed_length(length: int, bucket_tolerance: int) -> int:
    """The padded sequence length under a bucket tolerance.

    ``bucket_tolerance <= 1`` keeps lengths exact (signatures only match
    between identical length tuples); a tolerance ``t > 1`` rounds each
    length up to the next multiple of ``t``, so at most ``t - 1`` padding
    tokens are added per sequence and any two lengths within the same
    ``t``-bucket produce the same signature entry.  Coarser tolerances
    along a divisibility chain (2, 4, 8, ...) strictly merge buckets, so
    compiled-program reuse is monotone along such chains.
    """
    length = int(length)
    t = int(bucket_tolerance)
    if t <= 1:
        return length
    return -(-length // t) * t


class RequestQueue:
    """A FIFO of pending requests with monotonically increasing ids."""

    def __init__(self) -> None:
        self._pending: Deque[Request] = deque()
        self._next_id = 0
        self.submitted = 0
        self.popped = 0

    def submit(self, hidden: np.ndarray) -> int:
        """Enqueue one ``(length, hidden_size)`` sequence; returns its id."""
        hidden = np.ascontiguousarray(hidden, dtype=np.float32)
        if hidden.ndim != 2 or hidden.shape[0] == 0:
            raise ValueError(
                "a request must be a non-empty (length, hidden) matrix, "
                f"got shape {hidden.shape}")
        request = Request(request_id=self._next_id, hidden=hidden)
        self._next_id += 1
        self.submitted += 1
        self._pending.append(request)
        return request.request_id

    def submit_many(self, hiddens: Iterable[np.ndarray]) -> List[int]:
        return [self.submit(h) for h in hiddens]

    def pop(self, max_requests: int) -> List[Request]:
        """Dequeue up to ``max_requests`` requests in arrival order."""
        if max_requests <= 0:
            raise ValueError(f"max_requests must be positive, got {max_requests}")
        out: List[Request] = []
        while self._pending and len(out) < max_requests:
            out.append(self._pending.popleft())
        self.popped += len(out)
        return out

    def __len__(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        return (f"RequestQueue(pending={len(self)}, "
                f"submitted={self.submitted}, popped={self.popped})")
