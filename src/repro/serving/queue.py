"""Ragged requests, their terminal-state machine, and the arrival queue.

A :class:`Request` is one variable-length sequence (its ``(length,
hidden)`` activation matrix) waiting to be batched, now carrying the
serving lifecycle state: an optional absolute deadline, a retry budget,
and a :class:`RequestState` that moves exactly once from ``PENDING`` to
one of the four terminal states (``COMPLETED`` / ``FAILED`` /
``TIMED_OUT`` / ``REJECTED``).  :meth:`Request.mark` enforces the
exactly-once transition -- a request that already reached a terminal
state cannot be re-resolved, which is what the serving layer's
exactly-once delivery property rests on.

The :class:`RequestQueue` holds requests in arrival order.  It may be
*bounded* (``capacity``): when full, the configured shed policy decides
who pays -- ``"reject_newest"`` turns the incoming request away;
``"drop_expired_first"`` first evicts already-expired pending requests
(their compute would be wasted anyway) and only rejects the newcomer if
no room could be reclaimed; ``"shed_low_priority"`` additionally sheds
the *lowest-priority, latest-deadline* request (the newcomer competes
too, and is rejected only when it is itself the least valuable).  Shed
requests are marked terminally (``REJECTED`` / ``TIMED_OUT``) and parked
on a shed list the scheduler converts into structured failure results,
so backpressure never silently loses a request.

Requests also carry the serving-observability timestamps
(``t_submitted`` / ``t_formed`` / ``t_executed`` / ``t_delivered``, all
on the queue's injectable clock) the scheduler fills in as the request
moves through its lifecycle, and an integer ``priority`` class (smaller
= more urgent) consumed by the admission policies in
:mod:`repro.serving.admission`.

Batch *formation* policy -- how many requests to take, how to bucket
their lengths into a raggedness signature, what to do with expired
requests at formation time -- lives in :mod:`repro.serving.scheduler`.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Iterable, List, Optional

import numpy as np

from repro.core.errors import CoraError

#: Queue shed policies for bounded capacity.
SHED_POLICIES = ("reject_newest", "drop_expired_first", "shed_low_priority")


class RequestState(enum.Enum):
    """Lifecycle states of a request; all but ``PENDING`` are terminal."""

    PENDING = "pending"
    COMPLETED = "completed"
    FAILED = "failed"
    TIMED_OUT = "timed_out"
    REJECTED = "rejected"

    @property
    def terminal(self) -> bool:
        return self is not RequestState.PENDING


#: The four terminal states, as a frozenset (handy for assertions).
TERMINAL_STATES = frozenset(
    s for s in RequestState if s is not RequestState.PENDING)


@dataclass(eq=False)
class Request:
    """One ragged sequence awaiting encoder execution.

    ``eq=False``: requests compare (and hash) by identity -- a
    field-wise ``__eq__`` would compare the ``hidden`` array
    element-wise and raise on any multi-element sequence.
    """

    request_id: int
    #: the ``(length, hidden_size)`` activation matrix of the sequence
    hidden: np.ndarray
    #: absolute deadline on the queue's clock; ``None`` = no deadline
    deadline: Optional[float] = None
    #: extra execution attempts the scheduler may spend after the first
    max_retries: int = 0
    #: priority class, smaller = more urgent (see repro.serving.admission)
    priority: int = 1
    state: RequestState = field(default=RequestState.PENDING)
    #: execution attempts spent on this request (batched or isolated)
    attempts: int = field(default=0)
    #: selection rounds an admission policy passed this request over
    #: (drives the starvation bound of PriorityDeadlineAdmission)
    skips: int = field(default=0)
    #: lifecycle timestamps on the queue's clock, filled in as the
    #: request moves through submit -> batch formation -> execution ->
    #: delivery; ``None`` until the stage is reached
    t_submitted: Optional[float] = field(default=None)
    t_formed: Optional[float] = field(default=None)
    t_executed: Optional[float] = field(default=None)
    t_delivered: Optional[float] = field(default=None)

    @property
    def length(self) -> int:
        return int(self.hidden.shape[0])

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def mark(self, state: RequestState) -> None:
        """Transition to a terminal state, exactly once.

        Re-marking an already terminal request (even with the same
        state) raises: every request resolves to one terminal answer.
        """
        if not state.terminal:
            raise ValueError(f"cannot mark a request {state}; only "
                             "terminal states are assignable")
        if self.state.terminal:
            raise CoraError(
                f"request {self.request_id} is already terminal "
                f"({self.state.value}); cannot re-mark as {state.value}")
        self.state = state


class RequestQueue:
    """An arrival-order queue with optional bounded capacity.

    Parameters
    ----------
    capacity:
        Maximum pending requests; ``None`` (default) is unbounded --
        the original FIFO behaviour, bit for bit.
    shed_policy:
        What to do with a submission when full: ``"reject_newest"``
        marks the incoming request ``REJECTED``; ``"drop_expired_first"``
        first evicts expired pending requests (marked ``TIMED_OUT``) and
        only rejects the newcomer if the queue is still full.
    clock:
        Monotonic time source for deadline checks (injectable so tests
        drive time deterministically).
    """

    def __init__(self, capacity: Optional[int] = None,
                 shed_policy: str = "reject_newest",
                 clock: Callable[[], float] = time.monotonic) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed_policy {shed_policy!r}; expected one of "
                f"{SHED_POLICIES}")
        self.capacity = capacity
        self.shed_policy = shed_policy
        self.clock = clock
        self._pending: Deque[Request] = deque()
        self._next_id = 0
        self.submitted = 0
        self.popped = 0
        #: requests shed at admission time (``REJECTED``) or evicted as
        #: expired (``TIMED_OUT``), awaiting conversion into structured
        #: failure results by the scheduler
        self.shed: List[Request] = []
        self.rejected = 0
        self.expired_dropped = 0

    def _evict_expired(self) -> int:
        """Drop expired pending requests (drop_expired_first policy)."""
        now = self.clock()
        kept: Deque[Request] = deque()
        dropped = 0
        for request in self._pending:
            if request.expired(now):
                request.mark(RequestState.TIMED_OUT)
                self.shed.append(request)
                dropped += 1
            else:
                kept.append(request)
        self._pending = kept
        self.expired_dropped += dropped
        return dropped

    def _shed_low_priority(self, request: Request) -> Optional[Request]:
        """Backpressure under ``shed_low_priority``: evict the pending
        request that is lowest-priority with the latest deadline (ties:
        newest arrival).  The newcomer competes too; returns the victim
        (``None`` when the newcomer itself is the victim)."""
        inf = float("inf")

        def cost(r: Request) -> tuple:
            return (r.priority,
                    r.deadline if r.deadline is not None else inf,
                    r.request_id)

        victim = max((*self._pending, request), key=cost)
        if victim is request:
            return None
        self._pending.remove(victim)
        victim.mark(RequestState.REJECTED)
        self.shed.append(victim)
        self.rejected += 1
        return victim

    def submit(self, hidden: np.ndarray, *,
               deadline_s: Optional[float] = None,
               max_retries: int = 0,
               priority: int = 1) -> int:
        """Enqueue one ``(length, hidden_size)`` sequence; returns its id.

        ``deadline_s`` is relative to now on the queue's clock.  When the
        queue is full the shed policy applies; a shed request still gets
        an id and a terminal state, parked on :attr:`shed`.
        """
        hidden = np.ascontiguousarray(hidden, dtype=np.float32)
        if hidden.ndim != 2 or hidden.shape[0] == 0:
            raise ValueError(
                "a request must be a non-empty (length, hidden) matrix, "
                f"got shape {hidden.shape}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        deadline = None
        if deadline_s is not None:
            if deadline_s < 0:
                raise ValueError(
                    f"deadline_s must be >= 0, got {deadline_s}")
            deadline = self.clock() + float(deadline_s)
        request = Request(request_id=self._next_id, hidden=hidden,
                          deadline=deadline, max_retries=int(max_retries),
                          priority=int(priority),
                          t_submitted=self.clock())
        self._next_id += 1
        self.submitted += 1
        if self.capacity is not None and len(self._pending) >= self.capacity:
            if self.shed_policy in ("drop_expired_first",
                                    "shed_low_priority"):
                self._evict_expired()
            if len(self._pending) >= self.capacity \
                    and self.shed_policy == "shed_low_priority":
                self._shed_low_priority(request)
            if len(self._pending) >= self.capacity:
                request.mark(RequestState.REJECTED)
                self.shed.append(request)
                self.rejected += 1
                return request.request_id
        self._pending.append(request)
        return request.request_id

    def submit_many(self, hiddens: Iterable[np.ndarray], **kwargs) -> List[int]:
        return [self.submit(h, **kwargs) for h in hiddens]

    def pop(self, max_requests: int) -> List[Request]:
        """Dequeue up to ``max_requests`` requests in arrival order."""
        if max_requests <= 0:
            raise ValueError(f"max_requests must be positive, got {max_requests}")
        out: List[Request] = []
        while self._pending and len(out) < max_requests:
            out.append(self._pending.popleft())
        self.popped += len(out)
        return out

    def peek(self, max_requests: int) -> List[Request]:
        """The first ``max_requests`` pending requests, arrival order,
        without removing them (the admission policies' candidate window)."""
        if max_requests <= 0:
            raise ValueError(
                f"max_requests must be positive, got {max_requests}")
        out: List[Request] = []
        for request in self._pending:
            if len(out) >= max_requests:
                break
            out.append(request)
        return out

    def take(self, requests: Iterable[Request]) -> None:
        """Remove specific pending requests (by identity), preserving the
        arrival order of the rest -- the removal half of an admission
        policy's out-of-order selection."""
        taken = set(id(r) for r in requests)
        if not taken:
            return
        kept: Deque[Request] = deque()
        removed = 0
        for request in self._pending:
            if id(request) in taken:
                removed += 1
            else:
                kept.append(request)
        if removed != len(taken):
            raise ValueError(
                f"take() was handed {len(taken)} requests but only "
                f"{removed} are pending")
        self._pending = kept
        self.popped += removed

    def drain_shed(self) -> List[Request]:
        """Hand over (and clear) the shed requests accumulated so far."""
        shed, self.shed = self.shed, []
        return shed

    def __len__(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        return (f"RequestQueue(pending={len(self)}, "
                f"submitted={self.submitted}, popped={self.popped}, "
                f"rejected={self.rejected}, "
                f"expired_dropped={self.expired_dropped})")


def bucketed_length(length: int, bucket_tolerance: int) -> int:
    """The padded sequence length under a bucket tolerance.

    ``bucket_tolerance <= 1`` keeps lengths exact (signatures only match
    between identical length tuples); a tolerance ``t > 1`` rounds each
    length up to the next multiple of ``t``, so at most ``t - 1`` padding
    tokens are added per sequence and any two lengths within the same
    ``t``-bucket produce the same signature entry.  Coarser tolerances
    along a divisibility chain (2, 4, 8, ...) strictly merge buckets, so
    compiled-program reuse is monotone along such chains.
    """
    length = int(length)
    t = int(bucket_tolerance)
    if t <= 1:
        return length
    return -(-length // t) * t
