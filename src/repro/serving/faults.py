"""Deterministic fault injection and structured failure results.

Robustness claims are only as good as the faults they were tested
against, so the serving stack is wired with *named injection points* --
places where a :class:`FaultInjector` may deterministically raise, delay,
or corrupt the value flowing through:

``"compile"``
    :meth:`repro.Session.compile`, fired on a compiled-program cache miss
    before lowering starts.  The scheduler recovers by degrading the
    batch to the retained op-by-op execution path.
``"run"``
    :meth:`repro.core.session.CompiledProgram.run`, fired on the batch's
    packed outputs.  ``corrupt`` truncates the output rows so shape
    validation trips; ``raise`` emulates a kernel failure.  The scheduler
    recovers by bisecting the batch to isolate the poison request.
``"pipelined_worker"``
    Inside a :class:`~repro.core.engine.PipelinedEngine` worker, before a
    step dispatches.  The scheduler retries the batch once on a
    :class:`~repro.core.engine.SerialEngine`.
``"demux"``
    The scheduler's demultiplexing path (including the
    ``overlap_demux`` background worker), fired on the packed output
    before it is split into per-request rows.  The scheduler retries the
    demux once synchronously.

Every decision is deterministic: faults fire on explicit call indices
(``calls``), on batches containing a given ``request_id``, up to
``max_fires`` times, or -- for chaos runs -- with a probability drawn
from the injector's seeded generator.  The same seed and the same
sequence of ``fire`` calls reproduce the same fault schedule, which is
what lets the fault matrix assert bit-identical outputs for every
request a fault did not poison.

With no injector attached (the default everywhere) the serving stack
executes exactly the pre-fault-injection code path; ``enabled=False``
turns an attached injector into a no-op.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple, Type

import numpy as np

from repro.core.errors import ExecutionError

#: The named injection points threaded through the stack.  "admission"
#: fires inside the scheduler's admission-policy selection round, so the
#: FIFO-fallback path of a faulty policy is testable like every other
#: recovery path.
INJECTION_POINTS = ("compile", "run", "pipelined_worker", "process_worker",
                    "demux", "admission")

#: What a firing fault does to the call it interrupts.
FAULT_ACTIONS = ("raise", "delay", "corrupt")


@dataclass(eq=False)
class Fault:
    """One armed fault: where it fires, when, and what it does.

    A fault fires at its ``point`` when *all* of its conditions hold:
    the 0-based per-point call index is in ``calls`` (``None`` matches
    every call), the ambient batch contains ``request_id`` (``None``
    matches every batch), a seeded coin lands under ``probability``, and
    fewer than ``max_fires`` firings have happened (``None`` is
    unlimited).
    """

    point: str
    action: str = "raise"
    #: exception type instantiated (with ``message``) by ``raise`` faults
    error: Type[BaseException] = ExecutionError
    message: str = "injected fault"
    #: sleep duration of ``delay`` faults
    delay_s: float = 0.0
    #: 0-based call indices at this point that may fire; ``None`` = all
    calls: Optional[FrozenSet[int]] = None
    #: fire only when this request id is in the ambient batch context
    request_id: Optional[int] = None
    probability: float = 1.0
    max_fires: Optional[int] = 1
    fired: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; expected one of "
                f"{INJECTION_POINTS}")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{FAULT_ACTIONS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.calls is not None:
            self.calls = frozenset(int(c) for c in self.calls)


def _corrupt(payload: Any) -> Any:
    """Shape-corrupt a payload: drop the last row of every array in it.

    Arrays keep their dtype and all but one row, so downstream shape
    validation (not value inspection) is what must catch the corruption
    -- the realistic failure mode of a truncated transfer.
    """
    if isinstance(payload, np.ndarray):
        return payload[:-1] if payload.ndim >= 1 and payload.shape[0] else \
            payload
    if isinstance(payload, dict):
        return {key: _corrupt(value) for key, value in payload.items()}
    return payload


class FaultInjector:
    """A seeded, deterministic fault schedule over named injection points.

    Thread-safe: ``fire`` is called from the main scheduling thread, from
    pipelined-engine workers and from the overlap-demux worker; all
    counters are guarded by one lock.  The seeded generator is only
    consulted by probability faults, so call-indexed and request-matched
    faults are deterministic regardless of threading.
    """

    def __init__(self, seed: int = 0, enabled: bool = True):
        self.seed = int(seed)
        self.enabled = bool(enabled)
        self.faults: List[Fault] = []
        self._rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()
        #: per-point fire/call counters (all points pre-seeded to 0)
        self.calls: Dict[str, int] = {p: 0 for p in INJECTION_POINTS}
        self.fires: Dict[str, int] = {p: 0 for p in INJECTION_POINTS}
        #: ambient context (set per batch by the scheduler) merged under
        #: any explicit context a ``fire`` call passes
        self._ambient: Dict[str, Any] = {}

    # -- arming -----------------------------------------------------------------

    def add(self, point: str, action: str = "raise", **kwargs) -> Fault:
        """Arm one fault; returns it (its ``fired`` count is live)."""
        fault = Fault(point=point, action=action, **kwargs)
        with self._lock:
            self.faults.append(fault)
        return fault

    def set_ambient(self, **context: Any) -> None:
        """Replace the ambient context (the scheduler tags each batch's
        ``request_ids`` and ``signature`` before running it)."""
        with self._lock:
            self._ambient = dict(context)

    # -- firing -----------------------------------------------------------------

    def _should_fire(self, fault: Fault, index: int,
                     context: Dict[str, Any]) -> bool:
        if fault.max_fires is not None and fault.fired >= fault.max_fires:
            return False
        if fault.calls is not None and index not in fault.calls:
            return False
        if fault.request_id is not None and \
                fault.request_id not in context.get("request_ids", ()):
            return False
        if fault.probability < 1.0 and \
                float(self._rng.random()) >= fault.probability:
            return False
        return True

    def fire(self, point: str, payload: Any = None,
             **context: Any) -> Any:
        """Evaluate the armed faults at one injection point.

        Returns ``payload`` (possibly corrupted); raises the fault's
        error for ``raise`` faults; sleeps for ``delay`` faults.  The
        per-point call index advances only while the injector is enabled,
        so a disabled injector is transparent.
        """
        if not self.enabled:
            return payload
        if point not in INJECTION_POINTS:
            raise ValueError(f"unknown injection point {point!r}")
        to_raise: Optional[BaseException] = None
        delays: List[float] = []
        with self._lock:
            index = self.calls[point]
            self.calls[point] = index + 1
            merged = {**self._ambient, **context}
            for fault in self.faults:
                if fault.point != point:
                    continue
                if not self._should_fire(fault, index, merged):
                    continue
                fault.fired += 1
                self.fires[point] += 1
                if fault.action == "delay":
                    delays.append(fault.delay_s)
                elif fault.action == "corrupt":
                    payload = _corrupt(payload)
                elif to_raise is None:
                    to_raise = fault.error(
                        f"{fault.message} [injected at {point!r}]")
        for delay in delays:
            time.sleep(delay)
        if to_raise is not None:
            raise to_raise
        return payload

    # -- state ------------------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter and re-seed the probability generator, so a
        second identical run reproduces the same fault schedule."""
        with self._lock:
            self._rng = np.random.default_rng(self.seed)
            for point in INJECTION_POINTS:
                self.calls[point] = 0
                self.fires[point] = 0
            for fault in self.faults:
                fault.fired = 0

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "seed": self.seed,
                "faults": len(self.faults),
                "calls": dict(self.calls),
                "fires": dict(self.fires),
                "total_fires": sum(self.fires.values()),
            }

    def __repr__(self) -> str:
        return (f"FaultInjector(seed={self.seed}, enabled={self.enabled}, "
                f"faults={len(self.faults)}, "
                f"fires={sum(self.fires.values())})")


@dataclass(frozen=True)
class FailedResult:
    """The structured terminal answer of a request that did not complete.

    Delivered in the same results mapping as successful outputs, so every
    submitted request resolves to exactly one of: its output array, or
    one ``FailedResult`` naming the terminal state, the error, and how
    many execution attempts were spent.
    """

    request_id: int
    #: the request's terminal :class:`~repro.serving.queue.RequestState`
    state: Any
    error_type: str
    message: str
    attempts: int = 0

    @classmethod
    def from_exception(cls, request_id: int, state: Any,
                       exc: BaseException,
                       attempts: int = 0) -> "FailedResult":
        return cls(request_id=request_id, state=state,
                   error_type=type(exc).__name__, message=str(exc),
                   attempts=attempts)


__all__ = [
    "Fault",
    "FaultInjector",
    "FailedResult",
    "INJECTION_POINTS",
    "FAULT_ACTIONS",
]
