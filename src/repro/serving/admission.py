"""Admission control: priority + deadline-aware batch formation, adaptive
bucket tolerance, and the serving-observability primitives.

The FIFO scheduler treats every pending request the same; a production
front end cannot.  This module grows the serving layer three ways:

* **Admission policies** decide *which* pending requests form the next
  batch.  :class:`FifoAdmission` is the seed behaviour, bit for bit.
  :class:`PriorityDeadlineAdmission` orders a bounded *arrival window*
  of the oldest pending requests by (priority class, earliest deadline
  first, arrival) -- so an interactive request submitted behind a pile
  of batch work still makes the next mini-batch -- with an explicit
  starvation bound: a request passed over ``starvation_limit`` times is
  served ahead of everything, whatever its class.  Reordering only
  changes *which* requests share a batch; slot order inside the batch
  stays signature-canonical, so the paper's compiled-program-reuse
  argument is untouched.

* **Adaptive bucket tolerance.**  The scheduler already tracks, live,
  the two quantities the padding trade-off balances: the compiled
  program hit rate (how often a raggedness signature recurs) and the
  padding overhead (wasted padded tokens).  :class:`AdaptiveTolerance`
  is the feedback controller closing that loop: when the recent hit
  rate is poor it widens the tolerance (one power-of-two step, so
  bucket merging stays monotone along the divisibility chain); when the
  recent padding overhead exceeds its budget it narrows.  Bounds are
  explicit, and widening beyond 1 is only legal under causal masking --
  the exactness rule the scheduler already enforces.

* **Observability.**  :class:`LatencyHistogram` is a bounded
  log-bucketed histogram (a long-running server cannot keep a float per
  request) with p50/p99 estimation, and :class:`SimulatedClock` is an
  advanceable monotonic clock that lets benchmarks and tests replay a
  traffic trace in deterministic virtual time -- deadlines, backoff
  sleeps and service times all move on the same injected timeline.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from repro.serving.queue import Request, RequestQueue

#: Conventional priority classes (smaller = more urgent).  Priorities are
#: plain ints; these names just keep call sites readable.
PRIORITY_INTERACTIVE = 0
PRIORITY_STANDARD = 1
PRIORITY_BATCH = 2

_INF = float("inf")


def _urgency(request: Request) -> tuple:
    """Sort key: starved first, then priority class, then EDF, then
    arrival order (request ids are assigned in arrival order)."""
    return (request.priority,
            request.deadline if request.deadline is not None else _INF,
            request.request_id)


class AdmissionPolicy:
    """Strategy deciding which pending requests form the next batch.

    ``select`` removes and returns up to ``k`` requests from the queue
    (possibly expired ones -- the scheduler drops those with
    ``TIMED_OUT`` results and calls ``select`` again to backfill, so a
    policy never needs deadline bookkeeping of its own).
    """

    name = "abstract"

    def select(self, queue: RequestQueue, k: int,
               now: float) -> List[Request]:
        raise NotImplementedError


class FifoAdmission(AdmissionPolicy):
    """Arrival-order batch formation -- the seed scheduler, bit for bit."""

    name = "fifo"

    def select(self, queue: RequestQueue, k: int,
               now: float) -> List[Request]:
        if k <= 0 or not len(queue):
            return []
        return queue.pop(k)


class PriorityDeadlineAdmission(AdmissionPolicy):
    """Priority classes + earliest-deadline-first inside a bounded
    arrival window.

    Parameters
    ----------
    arrival_window:
        How many of the *oldest* pending requests compete for the next
        batch.  A later arrival can only jump ahead once it enters the
        window, so head-of-line blocking is relieved without unbounded
        reordering.
    starvation_limit:
        A candidate passed over this many selection rounds is promoted
        ahead of every priority class -- the explicit starvation bound.
        (Within the promoted set, ordering is still priority + EDF.)
    """

    name = "priority_edf"

    def __init__(self, arrival_window: int = 32,
                 starvation_limit: int = 4) -> None:
        if arrival_window < 1:
            raise ValueError(
                f"arrival_window must be >= 1, got {arrival_window}")
        if starvation_limit < 1:
            raise ValueError(
                f"starvation_limit must be >= 1, got {starvation_limit}")
        self.arrival_window = int(arrival_window)
        self.starvation_limit = int(starvation_limit)

    def select(self, queue: RequestQueue, k: int,
               now: float) -> List[Request]:
        if k <= 0:
            return []
        candidates = queue.peek(self.arrival_window)
        if not candidates:
            return []
        ranked = sorted(
            candidates,
            key=lambda r: (0 if r.skips >= self.starvation_limit else 1,
                           *_urgency(r)))
        chosen = ranked[:k]
        taken = set(id(r) for r in chosen)
        for request in candidates:
            if id(request) not in taken:
                request.skips += 1
        queue.take(chosen)
        return chosen


def get_admission_policy(policy) -> AdmissionPolicy:
    """Resolve an admission policy from a name or an instance."""
    if isinstance(policy, AdmissionPolicy):
        return policy
    if policy in (None, "fifo"):
        return FifoAdmission()
    if policy in ("priority_edf", "edf"):
        return PriorityDeadlineAdmission()
    raise ValueError(
        f"unknown admission policy {policy!r}; expected 'fifo', "
        "'priority_edf', or an AdmissionPolicy instance")


class AdaptiveTolerance:
    """Feedback controller for the scheduler's ``bucket_tolerance``.

    Every ``interval`` batches the scheduler hands the controller the
    *window* (since the previous adjustment) compiled-program hit rate
    and padding overhead; the controller answers with the next
    tolerance:

    * overhead above ``max_padding_overhead`` -> halve (padding is
      costing more compute than signature reuse is saving);
    * one raggedness bucket dominating the window's traffic (share >=
      ``dominance_hold``, reported via the optional ``dominant_share``
      argument from a scheduler wired to a
      :class:`~repro.core.scheduledb.ScheduleDB`) while the hit rate is
      healthy -> hold, even if the hit rate alone would have widened:
      the tuned schedules stored per bucket stay valid, and widening
      would remap the dominant traffic onto an untuned bucket;
    * hit rate below ``target_hit_rate`` (and overhead in budget) ->
      double (traffic is too length-diverse for the current buckets);
    * otherwise hold.

    Moves are power-of-two steps, so successive tolerances form a
    divisibility chain and bucket merging stays monotone (see
    :func:`repro.serving.queue.bucketed_length`).  The exactness rule is
    inherited from the scheduler: tolerances above 1 require causal
    masking, so an unmasked scheduler must keep ``max_tolerance == 1``.
    """

    def __init__(self, min_tolerance: int = 1, max_tolerance: int = 16,
                 interval: int = 8, target_hit_rate: float = 0.5,
                 max_padding_overhead: float = 0.25,
                 dominance_hold: float = 0.75) -> None:
        if min_tolerance < 1:
            raise ValueError(
                f"min_tolerance must be >= 1, got {min_tolerance}")
        if max_tolerance < min_tolerance:
            raise ValueError(
                f"max_tolerance ({max_tolerance}) must be >= min_tolerance "
                f"({min_tolerance})")
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if not 0.0 <= target_hit_rate <= 1.0:
            raise ValueError(
                f"target_hit_rate must be in [0, 1], got {target_hit_rate}")
        if max_padding_overhead < 0:
            raise ValueError(
                f"max_padding_overhead must be >= 0, got "
                f"{max_padding_overhead}")
        if not 0.0 <= dominance_hold <= 1.0:
            raise ValueError(
                f"dominance_hold must be in [0, 1], got {dominance_hold}")
        self.min_tolerance = int(min_tolerance)
        self.max_tolerance = int(max_tolerance)
        self.interval = int(interval)
        self.target_hit_rate = float(target_hit_rate)
        self.max_padding_overhead = float(max_padding_overhead)
        self.dominance_hold = float(dominance_hold)
        #: one entry per adjustment decision (including holds), each
        #: ``{"batch", "tolerance", "proposed", "hit_rate", "overhead"}``
        self.trajectory: List[Dict[str, Any]] = []

    def propose(self, current: int, hit_rate: float,
                padding_overhead: float,
                dominant_share: float = None) -> int:
        if padding_overhead > self.max_padding_overhead \
                and current > self.min_tolerance:
            return max(current // 2, self.min_tolerance)
        if dominant_share is not None \
                and dominant_share >= self.dominance_hold:
            # One bucket owns the window's traffic: its signature recurs
            # by definition, so widening cannot buy much reuse -- and it
            # would remap the dominant traffic onto a bucket with no
            # tuned schedules.  Hold (narrowing above still applies: the
            # padding budget is a hard constraint).
            return current
        if hit_rate < self.target_hit_rate and current < self.max_tolerance:
            return min(max(current, 1) * 2, self.max_tolerance)
        return current

    def record(self, batch: int, current: int, proposed: int,
               hit_rate: float, padding_overhead: float) -> None:
        self.trajectory.append({
            "batch": int(batch),
            "tolerance": int(current),
            "proposed": int(proposed),
            "hit_rate": float(hit_rate),
            "overhead": float(padding_overhead),
        })


class LatencyHistogram:
    """A bounded log-bucketed latency histogram (seconds).

    Bucket edges are log-spaced between ``min_s`` and ``max_s``;
    everything below the first edge lands in bucket 0, everything above
    the last in the final bucket.  Percentiles are reported as the upper
    edge of the bucket where the cumulative count crosses the quantile
    -- an upper bound with bounded relative error, at O(buckets) memory
    however many requests are recorded.
    """

    def __init__(self, min_s: float = 1e-5, max_s: float = 1e4,
                 buckets_per_decade: int = 8) -> None:
        if min_s <= 0 or max_s <= min_s:
            raise ValueError(
                f"need 0 < min_s < max_s, got {min_s}, {max_s}")
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}")
        decades = math.log10(max_s / min_s)
        n = max(1, int(round(decades * buckets_per_decade)))
        self.edges = [min_s * (max_s / min_s) ** (i / n)
                      for i in range(n + 1)]
        self.counts = [0] * (n + 1)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def record(self, value: float) -> None:
        value = float(value)
        if value < 0:
            value = 0.0
        lo, hi = 0, len(self.edges) - 1
        if value <= self.edges[0]:
            idx = 0
        elif value > self.edges[-1]:
            idx = len(self.counts) - 1
        else:
            while lo + 1 < hi:
                mid = (lo + hi) // 2
                if value <= self.edges[mid]:
                    hi = mid
                else:
                    lo = mid
            idx = hi
        self.counts[idx] += 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        threshold = q * self.count
        seen = 0
        for idx, count in enumerate(self.counts):
            seen += count
            if seen >= threshold:
                return min(self.edges[min(idx, len(self.edges) - 1)],
                           self.max_value)
        return self.max_value

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.total / self.count if self.count else 0.0,
            "p50_s": self.percentile(0.50),
            "p99_s": self.percentile(0.99),
            "max_s": self.max_value,
        }


class SimulatedClock:
    """An advanceable monotonic clock for replaying traffic traces.

    Callable (so it drops into every ``clock=`` parameter); ``advance``
    moves virtual time forward -- the scheduler's optional service-time
    model calls it during batch execution, and an injected ``sleeper``
    bound to :meth:`advance` turns retry-backoff sleeps into virtual
    time too, so a whole drain replays deterministically with no real
    waiting.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"cannot advance time backwards (dt={dt})")
        self._now += float(dt)

    def advance_to(self, t: float) -> None:
        if t > self._now:
            self._now = float(t)

    def __repr__(self) -> str:
        return f"SimulatedClock(now={self._now:.6f})"


__all__ = [
    "AdmissionPolicy",
    "FifoAdmission",
    "PriorityDeadlineAdmission",
    "AdaptiveTolerance",
    "LatencyHistogram",
    "SimulatedClock",
    "get_admission_policy",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_STANDARD",
    "PRIORITY_BATCH",
]
