"""Serving-scale front end for the ragged program runtime.

The paper's insight I1 -- raggedness is known before execution -- pays off
twice at serving time: a whole N-layer encoder stack compiles ahead of
time into one arena-planned program per raggedness signature, and a
request scheduler can *shape* the mini-batches it forms so those
signatures recur.  This package provides the request-side half:

* :mod:`repro.serving.queue` -- individual ragged requests and the FIFO
  arrival queue;
* :mod:`repro.serving.scheduler` -- the continuous-batching
  :class:`BatchScheduler`, which groups pending requests into batches,
  optionally pads sequence lengths to bucket boundaries (trading a little
  masked compute for compiled-program reuse, echoing the paper's partial
  padding), runs each batch through :meth:`repro.Session.run`, and
  demultiplexes per-request results.
"""

from repro.serving.queue import Request, RequestQueue, bucketed_length
from repro.serving.scheduler import BatchScheduler, ScheduledBatch

__all__ = [
    "Request",
    "RequestQueue",
    "BatchScheduler",
    "ScheduledBatch",
    "bucketed_length",
]
