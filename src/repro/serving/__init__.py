"""Serving-scale front end for the ragged program runtime.

The paper's insight I1 -- raggedness is known before execution -- pays off
twice at serving time: a whole N-layer encoder stack compiles ahead of
time into one arena-planned program per raggedness signature, and a
request scheduler can *shape* the mini-batches it forms so those
signatures recur.  This package provides the request-side half:

* :mod:`repro.serving.queue` -- individual ragged requests with their
  terminal-state lifecycle (deadlines, retry budgets) and the arrival
  queue with bounded capacity and shed policies;
* :mod:`repro.serving.scheduler` -- the continuous-batching
  :class:`BatchScheduler`, which groups pending requests into batches,
  optionally pads sequence lengths to bucket boundaries (trading a little
  masked compute for compiled-program reuse, echoing the paper's partial
  padding), runs each batch through :meth:`repro.Session.run` with
  failure isolation (split-and-retry bisection), graceful degradation
  (op-by-op and serial-engine fallbacks) and deadline enforcement, and
  demultiplexes per-request results;
* :mod:`repro.serving.admission` -- SLO-aware admission control:
  priority classes + earliest-deadline-first batch formation with a
  starvation bound, the adaptive ``bucket_tolerance`` feedback
  controller, bounded latency histograms, and the
  :class:`SimulatedClock` for deterministic virtual-time replay;
* :mod:`repro.serving.faults` -- the deterministic
  :class:`FaultInjector` exercising every recovery path above, and the
  structured :class:`FailedResult` terminal answer.
"""

from repro.serving.faults import (
    FAULT_ACTIONS,
    FailedResult,
    Fault,
    FaultInjector,
    INJECTION_POINTS,
)
from repro.serving.queue import (
    Request,
    RequestQueue,
    RequestState,
    SHED_POLICIES,
    TERMINAL_STATES,
    bucketed_length,
)
from repro.serving.admission import (
    AdaptiveTolerance,
    AdmissionPolicy,
    FifoAdmission,
    LatencyHistogram,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    PRIORITY_STANDARD,
    PriorityDeadlineAdmission,
    SimulatedClock,
    get_admission_policy,
)
from repro.serving.scheduler import BatchScheduler, ScheduledBatch

__all__ = [
    "Request",
    "RequestQueue",
    "RequestState",
    "TERMINAL_STATES",
    "SHED_POLICIES",
    "BatchScheduler",
    "ScheduledBatch",
    "Fault",
    "FaultInjector",
    "FailedResult",
    "INJECTION_POINTS",
    "FAULT_ACTIONS",
    "bucketed_length",
    "AdmissionPolicy",
    "FifoAdmission",
    "PriorityDeadlineAdmission",
    "AdaptiveTolerance",
    "LatencyHistogram",
    "SimulatedClock",
    "get_admission_policy",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_STANDARD",
    "PRIORITY_BATCH",
]
