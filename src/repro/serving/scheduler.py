"""Continuous batching over the ragged program runtime.

The :class:`BatchScheduler` sits between individual ragged requests and
:meth:`repro.Session.run`.  Each scheduling step it takes the next (up to)
``max_batch_size`` pending requests in arrival order, buckets their
lengths (``bucket_tolerance``), sorts them into a canonical slot order,
and the resulting *raggedness signature* -- the tuple of bucketed lengths
-- selects the compiled N-layer encoder program that serves the batch.
Recurring signatures hit the session's compiled-program cache, so no
kernel is re-lowered, no arena re-planned, no prelude rebuilt; the
session's per-signature hit/miss statistics quantify the reuse.

Batches execute through the session's pluggable
:class:`~repro.core.engine.ExecutionEngine` (construct the session with
``engine="pipelined"`` to overlap host and kernel nodes *within* a
batch), and with ``overlap_demux=True`` the scheduler additionally
pipelines *across* batches: the demultiplexing of batch ``k``'s outputs
into per-request rows runs on a background worker while the main thread
already executes batch ``k + 1``.

Bucketing trades compute for reuse exactly like the paper's partial
padding: a tolerance ``t`` pads each sequence with at most ``t - 1``
zero tokens, collapsing nearby lengths onto one signature.  Padding is
only *exact* under causal masking -- a padded key column receives an
additive ``-inf`` mask, its softmax weight is exactly zero, and the valid
rows are unchanged -- so tolerances above 1 require ``masked=True``; the
unmasked encoder attends over every key and must keep exact signatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.session import Session, default_session
from repro.models.config import PAPER_BASE_CONFIG, TransformerConfig
from repro.models.transformer import encoder_stack_program
from repro.ops.projection import unpack_tokens
from repro.serving.queue import Request, RequestQueue, bucketed_length


@dataclass(frozen=True)
class ScheduledBatch:
    """The record of one executed batch (kept when ``log_batches``)."""

    signature: Tuple[int, ...]
    requests: Tuple[Request, ...]
    #: valid lengths per slot (same order as ``signature``)
    lengths: Tuple[int, ...]

    @property
    def padded_lengths(self) -> Tuple[int, ...]:
        """Bucketed (padded) length per slot -- the signature IS the
        per-slot padded length tuple."""
        return self.signature

    @property
    def padding_tokens(self) -> int:
        return sum(self.padded_lengths) - sum(self.lengths)

    def padded_inputs(self, hidden_size: int) -> List[np.ndarray]:
        """Rebuild the zero-padded per-slot input matrices of the batch."""
        rows = []
        for request, padded in zip(self.requests, self.padded_lengths):
            mat = np.zeros((padded, hidden_size), dtype=np.float32)
            mat[:request.length] = request.hidden
            rows.append(mat)
        return rows


class BatchScheduler:
    """Groups ragged requests into signature-canonical encoder batches.

    Parameters
    ----------
    weights:
        One :class:`~repro.models.transformer.EncoderWeights` (shared by
        all layers) or a sequence with one weight set per layer.
    config:
        Transformer dimensions; ``hidden_size`` must match the requests.
    session:
        The :class:`~repro.core.session.Session` to compile/run through;
        defaults to the process-wide vector-backend session.
    masked:
        Run the causal-masked encoder.  Required for bucket tolerances
        above 1 (see the module docstring for why padding needs masking).
    n_layers:
        Stack depth when ``weights`` is a single weight set.
    max_batch_size:
        Upper bound on requests per scheduled batch.
    bucket_tolerance:
        Length-bucketing granularity; ``<= 1`` keeps signatures exact.
    sort_by_length:
        Order a batch's slots by descending bucketed length (ties by
        arrival), so any multiset of bucketed lengths maps to *one*
        canonical signature instead of ``k!`` permutations of it.
    log_batches:
        Keep a :class:`ScheduledBatch` record (pinning the request
        arrays) per executed batch, enabling
        :meth:`replay_bit_identical`.  Off by default: the log grows
        with every request served, which a long-running server cannot
        afford -- differential tests and benchmarks opt in.
    overlap_demux:
        Pipeline :meth:`drain` across batches: demultiplex batch ``k``'s
        (copied) outputs on a background worker while batch ``k + 1``
        executes.  ``step`` stays synchronous either way.  Off by
        default; bit-identical when on (the demux math is unchanged,
        only *when* it runs moves).
    """

    def __init__(self, weights, config: TransformerConfig = PAPER_BASE_CONFIG,
                 *, session: Optional[Session] = None, masked: bool = False,
                 n_layers: Optional[int] = None, max_batch_size: int = 8,
                 bucket_tolerance: int = 1, sort_by_length: bool = True,
                 log_batches: bool = False, overlap_demux: bool = False):
        if max_batch_size <= 0:
            raise ValueError(
                f"max_batch_size must be positive, got {max_batch_size}")
        if bucket_tolerance < 0:
            raise ValueError(
                f"bucket_tolerance must be >= 0, got {bucket_tolerance}")
        if bucket_tolerance > 1 and not masked:
            raise ValueError(
                "bucket_tolerance > 1 pads sequences, which is only exact "
                "under causal masking (padded keys get zero attention "
                "weight); pass masked=True or keep bucket_tolerance <= 1")
        self.weights = weights
        self.config = config
        self.session = session or default_session()
        self.masked = bool(masked)
        self.n_layers = n_layers
        self.max_batch_size = int(max_batch_size)
        self.bucket_tolerance = int(bucket_tolerance)
        self.sort_by_length = bool(sort_by_length)
        self.log_batches = bool(log_batches)
        self.overlap_demux = bool(overlap_demux)
        #: lazily created single-worker pool for overlapped demultiplexing
        self._demux_pool = None

        self.queue = RequestQueue()
        self.batch_log: List[ScheduledBatch] = []
        self.num_batches = 0
        self.num_completed = 0
        self.overlapped_batches = 0
        self.valid_tokens = 0
        self.padded_tokens = 0
        #: session counters at construction time -- ``stats`` reports
        #: deltas against these, so other users of a shared session
        #: (another scheduler, direct ``Session.run`` calls made before
        #: this scheduler existed) do not pollute this scheduler's
        #: numbers.  Concurrent interleaved use of the same session still
        #: shows up; give each scheduler its own session to fully isolate.
        self._baseline = self._session_counters()
        self._signatures_seen: set = set()

    def _session_counters(self) -> Dict[str, int]:
        stats = self.session.stats()
        return {key: stats[key]
                for key in ("signature_hits", "signature_misses",
                            "program_compiles", "program_cache_hits")}

    # -- request intake ---------------------------------------------------------

    def submit(self, hidden: np.ndarray) -> int:
        """Enqueue one ``(length, hidden_size)`` request; returns its id."""
        hidden = np.asarray(hidden)
        if hidden.ndim != 2 or hidden.shape[1] != self.config.hidden_size:
            raise ValueError(
                f"request must be (length, {self.config.hidden_size}), "
                f"got shape {hidden.shape}")
        return self.queue.submit(hidden)

    def submit_many(self, hiddens: Iterable[np.ndarray]) -> List[int]:
        return [self.submit(h) for h in hiddens]

    @property
    def pending(self) -> int:
        return len(self.queue)

    # -- batch formation and execution ------------------------------------------

    def _form_batch(self, requests: Sequence[Request]) -> ScheduledBatch:
        if self.sort_by_length:
            requests = sorted(
                requests,
                key=lambda r: (-bucketed_length(r.length,
                                                self.bucket_tolerance),
                               r.request_id))
        padded = tuple(bucketed_length(r.length, self.bucket_tolerance)
                       for r in requests)
        return ScheduledBatch(
            signature=padded, requests=tuple(requests),
            lengths=tuple(r.length for r in requests))

    def _run_program(self, batch: ScheduledBatch,
                     copy_outputs: bool) -> np.ndarray:
        """Execute one batch's program through the session (and hence its
        execution engine); returns the packed output token matrix."""
        program = encoder_stack_program(
            batch.padded_lengths, self.weights, self.config,
            masked=self.masked, n_layers=self.n_layers, session=self.session)
        packed = np.concatenate(
            batch.padded_inputs(self.config.hidden_size), axis=0)
        return self.session.run(program, {"tokens": packed},
                                copy_outputs=copy_outputs,
                                signature=batch.signature)["out_tokens"]

    @staticmethod
    def _demux(batch: ScheduledBatch, out: np.ndarray) -> Dict[int, np.ndarray]:
        """Split packed outputs back into per-request rows (padding
        stripped).  Pure function of its arguments, so it can run on the
        overlap worker while the next batch executes."""
        rows = unpack_tokens(out, batch.padded_lengths)
        return {
            request.request_id: rows[slot][:request.length].copy()
            for slot, request in enumerate(batch.requests)
        }

    def _note_batch(self, batch: ScheduledBatch) -> None:
        self.num_batches += 1
        self.num_completed += len(batch.requests)
        self.valid_tokens += sum(batch.lengths)
        self.padded_tokens += sum(batch.padded_lengths)
        # Bounded like the session's signature_stats: beyond the capacity
        # the distinct-signature count saturates instead of growing
        # scheduler memory with every new traffic shape.
        if len(self._signatures_seen) < self.session.signature_capacity:
            self._signatures_seen.add(batch.signature)
        if self.log_batches:
            self.batch_log.append(batch)

    def _next_batch(self) -> Optional[ScheduledBatch]:
        """Pop and canonicalise the next batch; ``None`` when idle."""
        requests = self.queue.pop(self.max_batch_size)
        if not requests:
            return None
        return self._form_batch(requests)

    def _dispatch_batch(self, batch: ScheduledBatch,
                        copy_outputs: bool) -> np.ndarray:
        """The one batch execution path both drain modes share: run the
        program and record the throughput/signature accounting."""
        out = self._run_program(batch, copy_outputs=copy_outputs)
        self._note_batch(batch)
        return out

    def _ensure_demux_pool(self):
        if self._demux_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._demux_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-demux")
        return self._demux_pool

    def close(self) -> None:
        """Shut down the overlap worker (idempotent; recreated lazily if
        the scheduler is used again).  Does NOT close the session -- it
        may be shared; call ``session.close()`` separately."""
        if self._demux_pool is not None:
            self._demux_pool.shutdown(wait=True)
            self._demux_pool = None

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def step(self) -> Dict[int, np.ndarray]:
        """Schedule and run one batch; ``{}`` when nothing is pending.

        Returns the per-request outputs, each a fresh ``(length,
        hidden_size)`` array keyed by request id (padding rows are
        stripped during demultiplexing).
        """
        batch = self._next_batch()
        if batch is None:
            return {}
        # Zero-copy demux: the packed output stays an arena view, valid
        # until the session's next run -- which only happens after the
        # per-request rows have been copied out by _demux.
        out = self._dispatch_batch(batch, copy_outputs=False)
        return self._demux(batch, out)

    def drain(self) -> Dict[int, np.ndarray]:
        """Run scheduling steps until the queue is empty; merged results.

        With ``overlap_demux=True`` the drain is pipelined: batch ``k``'s
        outputs are copied out of the arena and handed to a background
        worker for demultiplexing while the main thread executes batch
        ``k + 1``.  Results are identical to the synchronous drain.
        """
        if not self.overlap_demux:
            results: Dict[int, np.ndarray] = {}
            while len(self.queue):
                results.update(self.step())
            return results

        pool = self._ensure_demux_pool()
        futures = []
        while True:
            batch = self._next_batch()
            if batch is None:
                break
            # copy_outputs=True: the demux worker must not read arena
            # views the next batch's execution is about to overwrite.
            out = self._dispatch_batch(batch, copy_outputs=True)
            futures.append(pool.submit(self._demux, batch, out))
            self.overlapped_batches += 1
        results = {}
        for future in futures:
            results.update(future.result())
        return results

    # -- differential checking --------------------------------------------------

    def replay_bit_identical(self, results: Dict[int, np.ndarray]) -> bool:
        """Re-run every logged batch directly through ``Session.run`` and
        compare against the demultiplexed ``results`` bit for bit.

        The differential check the serving tests and the benchmark smoke
        mode share: the scheduler's per-request outputs must be exactly
        the rows a direct program execution of the same (padded) batch
        produces.  Requires ``log_batches=True``.
        """
        if not self.log_batches:
            raise ValueError(
                "replay_bit_identical needs the batch log; construct the "
                "scheduler with log_batches=True")
        h = self.config.hidden_size
        for batch in self.batch_log:
            program = encoder_stack_program(
                batch.padded_lengths, self.weights, self.config,
                masked=self.masked, n_layers=self.n_layers,
                session=self.session)
            out = self.session.run(
                program,
                {"tokens": np.concatenate(batch.padded_inputs(h))},
            )["out_tokens"]
            rows = unpack_tokens(out, batch.padded_lengths)
            for slot, request in enumerate(batch.requests):
                if not np.array_equal(rows[slot][:request.length],
                                      results[request.request_id]):
                    return False
        return True

    # -- statistics -------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Scheduler throughput counters plus the session's signature reuse.

        The session-derived counters are deltas since this scheduler was
        constructed, so earlier activity on a shared session is excluded.
        """
        current = self._session_counters()
        return {
            "pending": self.pending,
            "num_batches": self.num_batches,
            "num_completed": self.num_completed,
            "overlapped_batches": self.overlapped_batches,
            "valid_tokens": self.valid_tokens,
            "padded_tokens": self.padded_tokens,
            "padding_overhead": (
                self.padded_tokens / self.valid_tokens - 1.0
                if self.valid_tokens else 0.0),
            "distinct_signatures": len(self._signatures_seen),
            **{key: current[key] - self._baseline[key]
               for key in current},
        }
