"""Continuous batching over the ragged program runtime, fault-tolerantly
and SLO-aware.

The :class:`BatchScheduler` sits between individual ragged requests and
:meth:`repro.Session.run`.  Each scheduling step it selects up to
``max_batch_size`` pending requests -- in arrival order by default, or
by priority class + earliest-deadline-first within a starvation-bounded
arrival window under ``admission="priority_edf"`` (see
:mod:`repro.serving.admission`) -- buckets their lengths
(``bucket_tolerance``), sorts them into a canonical slot order, and the
resulting *raggedness signature* -- the tuple of bucketed lengths --
selects the compiled N-layer encoder program that serves the batch.
Recurring signatures hit the session's compiled-program cache, so no
kernel is re-lowered, no arena re-planned, no prelude rebuilt; the
session's per-signature hit/miss statistics quantify the reuse, and an
optional :class:`~repro.serving.admission.AdaptiveTolerance` controller
feeds those live hit-rate / padding-overhead statistics back into
``bucket_tolerance`` (power-of-two steps, masked-only above 1, so the
padding stays exact and bucket merging stays monotone).

Batches execute through the session's pluggable
:class:`~repro.core.engine.ExecutionEngine` (construct the session with
``engine="pipelined"`` to overlap host and kernel nodes *within* a
batch), and with ``overlap_demux=True`` the scheduler additionally
pipelines *across* batches: the demultiplexing of batch ``k``'s outputs
into per-request rows runs on a background worker while the main thread
already executes batch ``k + 1``.

With ``wide_batches=K > 1`` the scheduler additionally dispatches
*wide*: each scheduling step pops up to ``K`` signature-canonical
sub-batches and fuses them into one
:func:`~repro.core.program.merge_programs`-merged program whose ``K``
disjoint subgraphs share the weight constants, so a width-capable
engine (:class:`~repro.core.engine.PipelinedEngine`,
:class:`~repro.core.engine.ProcessPoolEngine`) sees genuine inter-batch
parallelism in ``ready_steps`` instead of one serial chain.  Outputs
demultiplex per sub-batch (``R{i}.out_tokens``) and then per request,
exactly as narrow dispatch does; a wide execution failure falls back to
the per-batch recovery ladder below (``wide_fallbacks`` counts these),
so fault semantics are unchanged.

Bucketing trades compute for reuse exactly like the paper's partial
padding: a tolerance ``t`` pads each sequence with at most ``t - 1``
zero tokens, collapsing nearby lengths onto one signature.  Padding is
only *exact* under causal masking -- a padded key column receives an
additive ``-inf`` mask, its softmax weight is exactly zero, and the valid
rows are unchanged -- so tolerances above 1 require ``masked=True``; the
unmasked encoder attends over every key and must keep exact signatures.

Failure semantics
-----------------
A production drain must survive faults, and every submitted request must
resolve to exactly one terminal answer: its output rows, or a structured
:class:`~repro.serving.faults.FailedResult`.  The recovery ladder, in
order:

1. **Admission control.**  Malformed requests (wrong ``hidden_size``,
   empty, optionally non-finite under ``validate_finite``) are rejected
   at ``submit`` with a ``ValueError`` -- they never reach a batch.  A
   bounded queue sheds under backpressure per its policy
   (``REJECTED`` / ``TIMED_OUT`` results, never an exception mid-drain).
2. **Deadlines.**  Requests whose deadline passed are dropped at
   batch-formation time with ``TIMED_OUT`` results instead of wasting
   batch compute.
3. **Graceful degradation.**  A compile failure
   (:class:`~repro.core.errors.CompileError` / lowering errors) for a
   batch's signature falls back to the retained op-by-op execution path
   (bit-identical when it uses the same codegen backend); a pipelined
   engine failure retries the batch once on a
   :class:`~repro.core.engine.SerialEngine`.
4. **Failure isolation.**  A batch that still raises is *bisected*:
   split-and-retry halves isolate the poison request, healthy rows
   re-run (and complete), and the poison request -- after its retry
   budget, with exponential backoff -- resolves to a ``FAILED`` result
   carrying the error type, message, and attempt count.
5. **Demux recovery.**  A demultiplexing failure (including on the
   overlap worker) is retried once synchronously; outstanding demux
   futures are always flushed, so a failed drain cannot wedge the pool.

Every path above is exercised deterministically by the
:class:`~repro.serving.faults.FaultInjector` (see
``benchmarks/bench_faults.py`` and ``tests/test_faults.py``); with no
injector attached the happy path is the pre-fault-tolerance code, bit
for bit.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, \
    Tuple, Union

import numpy as np

from repro.core.engine import PipelinedEngine, ProcessPoolEngine, SerialEngine
from repro.core.errors import (
    CompileError,
    DeadlineExceeded,
    ExecutionError,
    LoweringError,
)
from repro.core.scheduledb import ScheduleDB
from repro.core.session import Session, default_session
from repro.core.tunespace import raggedness_bucket
from repro.models.config import PAPER_BASE_CONFIG, TransformerConfig
from repro.models.transformer import (
    _weights_per_layer,
    encoder_stack_program,
    encoder_wide_program,
    run_encoder_layer_opbyop,
)
from repro.ops.projection import unpack_tokens
from repro.serving.admission import (
    AdaptiveTolerance,
    AdmissionPolicy,
    FifoAdmission,
    LatencyHistogram,
    get_admission_policy,
)
from repro.serving.faults import FailedResult, FaultInjector
from repro.serving.queue import (
    Request,
    RequestQueue,
    RequestState,
    bucketed_length,
)

#: Result type a drain resolves each request to.
RequestResult = Union[np.ndarray, FailedResult]

#: Compile-path errors the scheduler degrades on (op-by-op fallback)
#: instead of failing the batch.  ``VectorizeError`` subclasses
#: ``LoweringError``, so per-kernel vectorization failures are covered.
DEGRADABLE_ERRORS = (CompileError, LoweringError)


@dataclass(frozen=True)
class ScheduledBatch:
    """The record of one executed batch (kept when ``log_batches``)."""

    signature: Tuple[int, ...]
    requests: Tuple[Request, ...]
    #: valid lengths per slot (same order as ``signature``)
    lengths: Tuple[int, ...]

    @property
    def padded_lengths(self) -> Tuple[int, ...]:
        """Bucketed (padded) length per slot -- the signature IS the
        per-slot padded length tuple."""
        return self.signature

    @property
    def request_ids(self) -> Tuple[int, ...]:
        return tuple(r.request_id for r in self.requests)

    @property
    def padding_tokens(self) -> int:
        return sum(self.padded_lengths) - sum(self.lengths)

    def padded_inputs(self, hidden_size: int) -> List[np.ndarray]:
        """Rebuild the zero-padded per-slot input matrices of the batch."""
        rows = []
        for request, padded in zip(self.requests, self.padded_lengths):
            mat = np.zeros((padded, hidden_size), dtype=np.float32)
            mat[:request.length] = request.hidden
            rows.append(mat)
        return rows


class BatchScheduler:
    """Groups ragged requests into signature-canonical encoder batches.

    Parameters
    ----------
    weights:
        One :class:`~repro.models.transformer.EncoderWeights` (shared by
        all layers) or a sequence with one weight set per layer.
    config:
        Transformer dimensions; ``hidden_size`` must match the requests.
    session:
        The :class:`~repro.core.session.Session` to compile/run through;
        defaults to the process-wide vector-backend session.
    masked:
        Run the causal-masked encoder.  Required for bucket tolerances
        above 1 (see the module docstring for why padding needs masking).
    n_layers:
        Stack depth when ``weights`` is a single weight set.
    max_batch_size:
        Upper bound on requests per scheduled batch.
    bucket_tolerance:
        Length-bucketing granularity; ``<= 1`` keeps signatures exact.
    sort_by_length:
        Order a batch's slots by descending bucketed length (ties by
        arrival), so any multiset of bucketed lengths maps to *one*
        canonical signature instead of ``k!`` permutations of it.
    log_batches:
        Keep a :class:`ScheduledBatch` record (pinning the request
        arrays) per executed batch, enabling
        :meth:`replay_bit_identical`.  Off by default: the log grows
        with every request served, which a long-running server cannot
        afford -- differential tests and benchmarks opt in.
    overlap_demux:
        Pipeline :meth:`drain` across batches: demultiplex batch ``k``'s
        (copied) outputs on a background worker while batch ``k + 1``
        executes.  ``step`` stays synchronous either way.  Off by
        default; bit-identical when on (the demux math is unchanged,
        only *when* it runs moves).
    wide_batches:
        Fuse up to this many sub-batches into one merged wide program
        per dispatch (``1``, the default, keeps the narrow per-batch
        dispatch path byte for byte).  Values above 1 only pay off on a
        width-capable engine; outputs stay bit-identical to narrow
        dispatch either way, and any wide failure falls back to
        per-batch execution with the full recovery ladder.
    queue_capacity:
        Bound on pending requests; ``None`` (default) is unbounded.
    shed_policy:
        Backpressure policy of a bounded queue: ``"reject_newest"``,
        ``"drop_expired_first"``, or ``"shed_low_priority"`` (see
        :class:`RequestQueue`).
    default_deadline_s:
        Deadline (relative seconds) applied to requests submitted
        without an explicit one; ``None`` = no deadline.
    max_retries:
        Default per-request retry budget: extra isolated execution
        attempts a poison-suspected request gets before it is failed.
    retry_backoff_s:
        Base of the exponential backoff slept before isolated retry
        ``k`` (``retry_backoff_s * 2**k`` seconds, capped at
        ``max_backoff_s`` and at the request's remaining deadline);
        ``0`` disables sleeping (the default -- tests and benchmarks
        stay fast).
    max_backoff_s:
        Hard cap on a single backoff sleep, so an uncapped exponential
        cannot park the scheduler for minutes on a deep retry.
    sleeper:
        How backoff sleeps happen (injectable, consistent with the
        injectable ``clock``: tests and trace replays pass a sleeper
        that advances a :class:`~repro.serving.admission.SimulatedClock`
        instead of blocking).  Defaults to ``time.sleep``.
    validate_finite:
        Reject requests containing NaN/Inf values at admission.
    clock:
        Monotonic time source for deadlines (injectable for tests).
    admission:
        Batch-formation policy: ``"fifo"`` (arrival order -- the seed
        behaviour, bit for bit), ``"priority_edf"``, or an
        :class:`~repro.serving.admission.AdmissionPolicy` instance.
    default_priority:
        Priority class applied to requests submitted without one
        (smaller = more urgent).
    adaptive_tolerance:
        Optional :class:`~repro.serving.admission.AdaptiveTolerance`
        controller (or ``True`` for defaults) that widens/narrows
        ``bucket_tolerance`` from the live hit-rate / padding-overhead
        window statistics.  Widening beyond 1 requires ``masked=True``
        (the exactness rule).
    service_model:
        Optional simulated per-batch service time,
        ``f(batch) -> seconds``: after each successful batch execution
        the scheduler advances an *advanceable* clock (one exposing
        ``advance``, e.g. :class:`SimulatedClock`) by the model's cost,
        so trace replays measure queueing and execution latency in
        deterministic virtual time.  Ignored when the clock cannot
        advance.
    drop_doomed:
        Shed requests at batch formation when the live per-batch
        service-time EWMA predicts they cannot complete before their
        deadline (resolved ``TIMED_OUT`` with zero execution attempts
        spent).  Off by default -- the seed behaviour only drops
        *already-expired* requests -- because it trades late completions
        for earlier timeouts, which is the right call for goodput but
        not for best-effort serving.
    schedule_db:
        Optional :class:`~repro.core.scheduledb.ScheduleDB` (or a path /
        ``True`` for the default directory).  Every delivered batch's
        raggedness bucket and valid/padded token counts are recorded
        into the DB's traffic table, so an offline
        :class:`~repro.core.autotune.AutoTuner` run knows which
        signatures dominate live traffic and tunes those first; the
        live dominant-bucket share also feeds the adaptive-tolerance
        controller (hold the tolerance while one tuned bucket owns the
        window).  Independent from the *session's* ``tune=`` mode --
        wire both to close the full loop.
    """

    def __init__(self, weights, config: TransformerConfig = PAPER_BASE_CONFIG,
                 *, session: Optional[Session] = None, masked: bool = False,
                 n_layers: Optional[int] = None, max_batch_size: int = 8,
                 bucket_tolerance: int = 1, sort_by_length: bool = True,
                 log_batches: bool = False, overlap_demux: bool = False,
                 wide_batches: int = 1,
                 queue_capacity: Optional[int] = None,
                 shed_policy: str = "reject_newest",
                 default_deadline_s: Optional[float] = None,
                 max_retries: int = 0,
                 retry_backoff_s: float = 0.0,
                 max_backoff_s: float = 30.0,
                 sleeper: Callable[[float], None] = time.sleep,
                 validate_finite: bool = False,
                 clock: Callable[[], float] = time.monotonic,
                 admission: Union[str, AdmissionPolicy] = "fifo",
                 default_priority: int = 1,
                 adaptive_tolerance: Union[AdaptiveTolerance, bool,
                                           None] = None,
                 service_model: Optional[
                     Callable[["ScheduledBatch"], float]] = None,
                 drop_doomed: bool = False,
                 schedule_db: Union[ScheduleDB, str, bool, None] = None):
        if max_batch_size <= 0:
            raise ValueError(
                f"max_batch_size must be positive, got {max_batch_size}")
        if bucket_tolerance < 0:
            raise ValueError(
                f"bucket_tolerance must be >= 0, got {bucket_tolerance}")
        if bucket_tolerance > 1 and not masked:
            raise ValueError(
                "bucket_tolerance > 1 pads sequences, which is only exact "
                "under causal masking (padded keys get zero attention "
                "weight); pass masked=True or keep bucket_tolerance <= 1")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}")
        if max_backoff_s <= 0:
            raise ValueError(
                f"max_backoff_s must be positive, got {max_backoff_s}")
        if wide_batches <= 0:
            raise ValueError(
                f"wide_batches must be positive, got {wide_batches}")
        if adaptive_tolerance is True:
            adaptive_tolerance = AdaptiveTolerance(
                max_tolerance=16 if masked else 1)
        elif adaptive_tolerance is False:
            adaptive_tolerance = None
        if adaptive_tolerance is not None \
                and adaptive_tolerance.max_tolerance > 1 and not masked:
            raise ValueError(
                "adaptive tolerance may only widen buckets beyond 1 under "
                "causal masking (padding is exact only then); pass "
                "masked=True or cap the controller at max_tolerance=1")
        self.weights = weights
        self.config = config
        self.session = session or default_session()
        self.masked = bool(masked)
        self.n_layers = n_layers
        self.max_batch_size = int(max_batch_size)
        self.bucket_tolerance = int(bucket_tolerance)
        self.sort_by_length = bool(sort_by_length)
        self.log_batches = bool(log_batches)
        self.overlap_demux = bool(overlap_demux)
        self.wide_batches = int(wide_batches)
        self.default_deadline_s = default_deadline_s
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self._sleep = sleeper
        self.validate_finite = bool(validate_finite)
        self.admission = get_admission_policy(admission)
        self.default_priority = int(default_priority)
        self.adaptive_tolerance = adaptive_tolerance
        self.service_model = service_model
        self.drop_doomed = bool(drop_doomed)
        #: persistent tuned-schedule store receiving live traffic stats.
        if schedule_db is None or schedule_db is False:
            self.schedule_db: Optional[ScheduleDB] = None
        elif isinstance(schedule_db, ScheduleDB):
            self.schedule_db = schedule_db
        elif schedule_db is True:
            self.schedule_db = ScheduleDB()
        else:
            self.schedule_db = ScheduleDB(schedule_db)
        #: per-adaptation-window batch counts by raggedness bucket,
        #: feeding the controller's dominant-share hold.
        self._window_buckets: Counter = Counter()
        #: EWMA of recent per-batch service time, feeding the
        #: ``drop_doomed`` slack check; ``None`` until a batch completes.
        self._service_ewma: Optional[float] = None
        #: lazily created single-worker pool for overlapped demultiplexing
        self._demux_pool = None
        #: lazily created serial engine for pipelined-failure retries
        self._serial_fallback: Optional[SerialEngine] = None

        self.queue = RequestQueue(capacity=queue_capacity,
                                  shed_policy=shed_policy, clock=clock)
        self.batch_log: List[ScheduledBatch] = []
        self.num_batches = 0
        self.num_completed = 0
        self.overlapped_batches = 0
        self.valid_tokens = 0
        self.padded_tokens = 0
        #: structured failures awaiting delivery (request id -> result);
        #: merged into the next ``step``/``drain`` return value.
        self._failures: Dict[int, FailedResult] = {}
        #: fault-tolerance counters (see ``stats``)
        self.failed_requests = 0
        self.timed_out_requests = 0
        self.rejected_requests = 0
        self.retries = 0
        self.isolation_runs = 0
        self.degraded_batches = 0
        self.engine_fallbacks = 0
        self.demux_recoveries = 0
        #: wide-dispatch counters (see ``stats``)
        self.wide_dispatches = 0
        self.wide_fallbacks = 0
        self.max_width_achieved = 0
        #: SLO counters: completions delivered within / past the deadline
        #: (no-deadline completions count as goodput), admission-policy
        #: failures that fell back to FIFO selection, and adaptive
        #: tolerance adjustments actually applied.
        self.goodput_requests = 0
        self.late_completions = 0
        self.admission_fallbacks = 0
        self.tolerance_adjustments = 0
        #: requests dropped at formation because the drop_doomed slack
        #: check predicted they could not complete before their deadline
        self.doomed_dropped = 0
        #: per-priority-class latency histograms (queue = submit->formed,
        #: execute = formed->executed, total = submit->delivered),
        #: recorded for completed requests; bounded log-bucketed
        #: histograms, guarded by a lock (the overlap-demux worker
        #: records concurrently with the main thread).
        self.latency_by_priority: Dict[int, Dict[str, LatencyHistogram]] = {}
        self._metrics_lock = threading.Lock()
        #: window baselines for the adaptive-tolerance controller
        self._adapt_batch = 0
        self._adapt_tokens = (0, 0)
        self._adapt_signatures = (0, 0)
        #: session counters at construction time -- ``stats`` reports
        #: deltas against these, so other users of a shared session
        #: (another scheduler, direct ``Session.run`` calls made before
        #: this scheduler existed) do not pollute this scheduler's
        #: numbers.  Concurrent interleaved use of the same session still
        #: shows up; give each scheduler its own session to fully isolate.
        self._baseline = self._session_counters()
        self._signatures_seen: set = set()
        #: signature -> narrow program uid, recorded when a batch's
        #: program is (re)built, so ``fusion_stats`` can look compiled
        #: programs up by uid without triggering a single program build.
        #: Bounded like ``_signatures_seen``.
        self._program_uids: Dict[Tuple[int, ...], int] = {}

    def _session_counters(self) -> Dict[str, int]:
        stats = self.session.stats()
        return {key: stats[key]
                for key in ("signature_hits", "signature_misses",
                            "program_compiles", "program_cache_hits")}

    def _injector(self) -> Optional[FaultInjector]:
        return getattr(self.session, "fault_injector", None)

    # -- request intake ---------------------------------------------------------

    def submit(self, hidden: np.ndarray, *,
               deadline_s: Optional[float] = None,
               max_retries: Optional[int] = None,
               priority: Optional[int] = None) -> int:
        """Enqueue one ``(length, hidden_size)`` request; returns its id.

        Admission control happens here: a malformed request (wrong
        ``hidden_size``, empty, or -- under ``validate_finite`` --
        containing NaN/Inf) raises ``ValueError`` immediately instead of
        poisoning a batch later.  A full bounded queue sheds per its
        policy; the shed request's id is still returned and it resolves
        to a ``REJECTED``/``TIMED_OUT`` :class:`FailedResult`.
        ``priority`` is the request's class (smaller = more urgent),
        consumed by priority-aware admission and shed policies.
        """
        hidden = np.asarray(hidden)
        if hidden.ndim != 2 or hidden.shape[1] != self.config.hidden_size:
            raise ValueError(
                f"request must be (length, {self.config.hidden_size}), "
                f"got shape {hidden.shape}")
        if self.validate_finite and not np.isfinite(hidden).all():
            raise ValueError(
                "request contains non-finite values (NaN/Inf); rejected at "
                "admission (validate_finite=True)")
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        if max_retries is None:
            max_retries = self.max_retries
        if priority is None:
            priority = self.default_priority
        request_id = self.queue.submit(hidden, deadline_s=deadline_s,
                                       max_retries=max_retries,
                                       priority=priority)
        self._absorb_shed()
        return request_id

    def submit_many(self, hiddens: Iterable[np.ndarray],
                    **kwargs) -> List[int]:
        return [self.submit(h, **kwargs) for h in hiddens]

    @property
    def pending(self) -> int:
        return len(self.queue)

    def _record_failure(self, request: Request,
                        exc: BaseException) -> FailedResult:
        if request.t_delivered is None:
            request.t_delivered = self.queue.clock()
        result = FailedResult.from_exception(
            request.request_id, request.state, exc,
            attempts=request.attempts)
        self._failures[request.request_id] = result
        return result

    def _absorb_shed(self) -> None:
        """Convert queue-shed requests into deliverable failure results."""
        for request in self.queue.drain_shed():
            if request.state is RequestState.REJECTED:
                self.rejected_requests += 1
                exc: BaseException = _queue_full_error(self.queue)
            else:
                self.timed_out_requests += 1
                exc = DeadlineExceeded(
                    f"request {request.request_id} expired while queued "
                    "(shed under backpressure)")
            self._record_failure(request, exc)

    # -- batch formation and execution ------------------------------------------

    def _form_batch(self, requests: Sequence[Request]) -> ScheduledBatch:
        if self.sort_by_length:
            requests = sorted(
                requests,
                key=lambda r: (-bucketed_length(r.length,
                                                self.bucket_tolerance),
                               r.request_id))
        padded = tuple(bucketed_length(r.length, self.bucket_tolerance)
                       for r in requests)
        now = self.queue.clock()
        for request in requests:
            if request.t_formed is None:
                request.t_formed = now
        return ScheduledBatch(
            signature=padded, requests=tuple(requests),
            lengths=tuple(r.length for r in requests))

    def _select(self, k: int, now: float) -> List[Request]:
        """One admission-policy selection round, with fault isolation: a
        policy that raises (or is made to raise via the ``admission``
        injection point) falls back to FIFO for that round instead of
        wedging the scheduler."""
        injector = self._injector()
        try:
            if injector is not None:
                injector.fire("admission", None)
            return self.admission.select(self.queue, k, now)
        except Exception:
            self.admission_fallbacks += 1
            return FifoAdmission().select(self.queue, k, now)

    def _next_batch(self) -> Optional[ScheduledBatch]:
        """Select (via the admission policy) and canonicalise the next
        batch; ``None`` when idle.

        Deadline-expired requests are dropped here -- at batch-formation
        time, before any compute is spent on them -- with ``TIMED_OUT``
        failure results; the batch keeps backfilling from the policy
        until it is full or the queue has nothing more to offer.
        """
        self._absorb_shed()
        requests: List[Request] = []
        now = self.queue.clock()
        # Slack floor for doomed-drop: a request whose deadline falls
        # inside the (EWMA-estimated) service time of the batch it would
        # join cannot complete on time -- executing it anyway turns a
        # drop into a late completion and steals capacity from feasible
        # work.  Opt-in: the seed FIFO behaviour drops only at expiry.
        slack = self._service_ewma \
            if self.drop_doomed and self._service_ewma is not None else 0.0
        while len(requests) < self.max_batch_size:
            selected = self._select(self.max_batch_size - len(requests), now)
            if not selected:
                break
            for request in selected:
                if request.expired(now):
                    request.mark(RequestState.TIMED_OUT)
                    self.timed_out_requests += 1
                    self._record_failure(request, DeadlineExceeded(
                        f"request {request.request_id} missed its deadline "
                        "before batch formation"))
                    continue
                if slack and request.deadline is not None \
                        and now + slack >= request.deadline:
                    request.mark(RequestState.TIMED_OUT)
                    self.timed_out_requests += 1
                    self.doomed_dropped += 1
                    self._record_failure(request, DeadlineExceeded(
                        f"request {request.request_id} predicted to miss "
                        f"its deadline (slack {request.deadline - now:.4f}s "
                        f"< estimated service {slack:.4f}s)"))
                    continue
                requests.append(request)
        if not requests:
            return None
        return self._form_batch(requests)

    def _next_batches(self) -> List[ScheduledBatch]:
        """Pop up to ``wide_batches`` canonical sub-batches for one
        dispatch; ``[]`` when idle.  With ``wide_batches=1`` this is just
        ``_next_batch`` in a list."""
        batches: List[ScheduledBatch] = []
        while len(batches) < self.wide_batches:
            batch = self._next_batch()
            if batch is None:
                break
            batches.append(batch)
        return batches

    def _run_program(self, batch: ScheduledBatch, copy_outputs: bool,
                     engine=None) -> np.ndarray:
        """Execute one batch's program through the session (and hence its
        execution engine); returns the packed output token matrix."""
        program = encoder_stack_program(
            batch.padded_lengths, self.weights, self.config,
            masked=self.masked, n_layers=self.n_layers, session=self.session)
        # Remember which program served this signature so fusion_stats()
        # can report on it without rebuilding anything (bounded like
        # _signatures_seen).
        if (batch.signature in self._program_uids
                or len(self._program_uids) < self.session.signature_capacity):
            self._program_uids[batch.signature] = program.uid
        packed = np.concatenate(
            batch.padded_inputs(self.config.hidden_size), axis=0)
        return self.session.run(program, {"tokens": packed},
                                copy_outputs=copy_outputs,
                                signature=batch.signature,
                                engine=engine)["out_tokens"]

    def _run_opbyop(self, batch: ScheduledBatch) -> np.ndarray:
        """The degraded execution path: op-by-op, one dispatch per
        operator, no whole-program compilation.

        Uses the session's codegen backend and executor so the per-kernel
        caches are shared and the math stays bit-identical to the program
        path (the executor's own scalar fallback covers per-kernel
        vectorization failures, completing the degradation order:
        program -> op-by-op compiled -> scalar fallback).
        """
        per_layer = _weights_per_layer(
            self.weights, self.n_layers,
            default_layers=self.config.num_layers)
        hidden = batch.padded_inputs(self.config.hidden_size)
        for layer_weights in per_layer:
            hidden = run_encoder_layer_opbyop(
                hidden, layer_weights, self.config, masked=self.masked,
                backend=self.session.backend,
                executor=self.session.executor).hidden
        return np.concatenate(hidden, axis=0)

    def _check_output(self, batch: ScheduledBatch, out: np.ndarray) -> None:
        expected = (sum(batch.padded_lengths), self.config.hidden_size)
        if tuple(out.shape) != expected:
            raise ExecutionError(
                f"batch output has shape {tuple(out.shape)}, expected "
                f"{expected}; treating the batch as failed (corrupted "
                "output)")

    def _execute(self, batch: ScheduledBatch, copy_outputs: bool,
                 engine=None) -> np.ndarray:
        """One batch execution attempt, with graceful degradation.

        Compile-path errors degrade to the op-by-op path
        (``degraded_batches``); a pipelined-engine failure retries once
        on a serial engine (``engine_fallbacks``).  Anything else (a
        poison request, a corrupted output) propagates to the caller,
        which isolates it via bisection.
        """
        injector = self._injector()
        if injector is not None:
            injector.set_ambient(request_ids=frozenset(batch.request_ids),
                                 signature=batch.signature)
        t_start = self.queue.clock()
        for request in batch.requests:
            request.attempts += 1
        try:
            out = self._run_program(batch, copy_outputs, engine=engine)
        except DEGRADABLE_ERRORS:
            self.degraded_batches += 1
            out = self._run_opbyop(batch)
        except Exception:
            if engine is None and isinstance(
                    self.session.engine,
                    (PipelinedEngine, ProcessPoolEngine)):
                # A pipelined or process-pool worker died mid-dispatch:
                # the arena state is suspect but the compiled program is
                # not -- retry the whole batch once on a serial engine
                # before blaming a request.
                if self._serial_fallback is None:
                    self._serial_fallback = SerialEngine()
                try:
                    out = self._run_program(batch, copy_outputs,
                                            engine=self._serial_fallback)
                    self.engine_fallbacks += 1
                except DEGRADABLE_ERRORS:
                    self.engine_fallbacks += 1
                    self.degraded_batches += 1
                    out = self._run_opbyop(batch)
            else:
                raise
        self._check_output(batch, out)
        self._after_execute((batch,), t_start)
        return out

    def _after_execute(self, batches: Sequence[ScheduledBatch],
                       t_start: float) -> None:
        """Post-execution bookkeeping shared by the narrow and wide
        paths: advance an advanceable (simulated) clock by the
        service-time model, stamp ``t_executed``, and fold the observed
        per-batch service time into the EWMA the ``drop_doomed`` slack
        check consults."""
        if self.service_model is not None:
            advance = getattr(self.queue.clock, "advance", None)
            if advance is not None:
                for batch in batches:
                    advance(max(float(self.service_model(batch)), 0.0))
        now = self.queue.clock()
        for batch in batches:
            for request in batch.requests:
                request.t_executed = now
        elapsed = (now - t_start) / len(batches)
        if elapsed > 0:
            self._service_ewma = elapsed if self._service_ewma is None \
                else 0.2 * elapsed + 0.8 * self._service_ewma

    def _execute_wide(self, group: Sequence[ScheduledBatch],
                      copy_outputs: bool) -> List[np.ndarray]:
        """Run ``K >= 2`` sub-batches as one fused wide program.

        The group's padded-length vectors select (and memoize, on the
        session) one :func:`encoder_wide_program`; sub-batch ``i`` binds
        ``R{i}.tokens`` and reads back ``R{i}.out_tokens``, so one
        ``Session.run`` serves every sub-batch and a width-capable
        engine executes them concurrently.  Any failure propagates to
        the caller, which falls back to per-batch narrow dispatch --
        the wide path adds no recovery machinery of its own.
        """
        injector = self._injector()
        if injector is not None:
            injector.set_ambient(
                request_ids=frozenset(
                    rid for batch in group for rid in batch.request_ids),
                signature=tuple(batch.signature for batch in group))
        t_start = self.queue.clock()
        for batch in group:
            for request in batch.requests:
                request.attempts += 1
        program = encoder_wide_program(
            [batch.padded_lengths for batch in group], self.weights,
            self.config, masked=self.masked, n_layers=self.n_layers,
            session=self.session)
        info = program.merge_info
        bound = {
            info.input_name(i, "tokens"): np.concatenate(
                batch.padded_inputs(self.config.hidden_size), axis=0)
            for i, batch in enumerate(group)
        }
        outs = self.session.run(
            program, bound, copy_outputs=copy_outputs,
            signature=tuple(batch.signature for batch in group))
        packed = [outs[info.output_name(i, "out_tokens")]
                  for i in range(len(group))]
        for batch, out in zip(group, packed):
            self._check_output(batch, out)
        self._after_execute(group, t_start)
        return packed

    def _dispatch_wide(self, group: Sequence[ScheduledBatch],
                       copy_outputs: bool) -> Optional[List[np.ndarray]]:
        """Attempt one fused wide dispatch; ``None`` means fall back to
        per-batch narrow dispatch (``wide_fallbacks`` counted)."""
        if len(group) < 2:
            return None
        try:
            packed = self._execute_wide(group, copy_outputs)
        except Exception:
            self.wide_fallbacks += 1
            return None
        self.wide_dispatches += 1
        self.max_width_achieved = max(self.max_width_achieved, len(group))
        return packed

    def _note_batch(self, batch: ScheduledBatch) -> None:
        self.num_batches += 1
        self.num_completed += len(batch.requests)
        self.valid_tokens += sum(batch.lengths)
        self.padded_tokens += sum(batch.padded_lengths)
        bucket = raggedness_bucket(batch.lengths)
        self._window_buckets[bucket] += 1
        if self.schedule_db is not None:
            self.schedule_db.record_traffic(
                bucket, sum(batch.lengths), sum(batch.padded_lengths))
        # Bounded like the session's signature_stats: beyond the capacity
        # the distinct-signature count saturates instead of growing
        # scheduler memory with every new traffic shape.
        if len(self._signatures_seen) < self.session.signature_capacity:
            self._signatures_seen.add(batch.signature)
        if self.log_batches:
            self.batch_log.append(batch)
        self._maybe_adapt()

    def _rollback_batch(self, batch: ScheduledBatch) -> None:
        """Reverse everything :meth:`_note_batch` recorded for a batch
        whose outputs turned out to be undeliverable, so padding-overhead
        and throughput stats reflect only delivered batches."""
        self.num_batches -= 1
        self.num_completed -= len(batch.requests)
        self.valid_tokens -= sum(batch.lengths)
        self.padded_tokens -= sum(batch.padded_lengths)
        bucket = raggedness_bucket(batch.lengths)
        if self._window_buckets.get(bucket, 0) > 0:
            self._window_buckets[bucket] -= 1
        if self.log_batches and self.batch_log \
                and self.batch_log[-1] is batch:
            self.batch_log.pop()

    def _maybe_adapt(self) -> None:
        """Close the adaptive-tolerance feedback loop.

        Every ``interval`` delivered batches, compute the *window* (since
        the previous decision) signature hit rate and padding overhead
        and apply the controller's proposal.  Changing the tolerance only
        affects how *future* batches bucket; already-formed batches are
        untouched, so exactness and bit-identical replay are preserved.
        """
        controller = self.adaptive_tolerance
        if controller is None:
            return
        self._adapt_batch += 1
        if self._adapt_batch % controller.interval != 0:
            return
        counters = self._session_counters()
        hits = counters["signature_hits"] - self._baseline["signature_hits"]
        misses = (counters["signature_misses"]
                  - self._baseline["signature_misses"])
        prev_hits, prev_misses = self._adapt_signatures
        window_hits = hits - prev_hits
        window_misses = misses - prev_misses
        window_lookups = window_hits + window_misses
        hit_rate = window_hits / window_lookups if window_lookups else 1.0
        prev_valid, prev_padded = self._adapt_tokens
        window_valid = self.valid_tokens - prev_valid
        window_padded = self.padded_tokens - prev_padded
        overhead = (window_padded / window_valid - 1.0
                    if window_valid else 0.0)
        window_batches = sum(self._window_buckets.values())
        dominant_share = (max(self._window_buckets.values())
                          / window_batches if window_batches else None)
        try:
            proposed = controller.propose(self.bucket_tolerance, hit_rate,
                                          overhead,
                                          dominant_share=dominant_share)
        except TypeError:
            # Custom controllers predating the dominant-share signal.
            proposed = controller.propose(self.bucket_tolerance, hit_rate,
                                          overhead)
        controller.record(self.num_batches, self.bucket_tolerance, proposed,
                          hit_rate, overhead)
        if proposed != self.bucket_tolerance:
            self.bucket_tolerance = proposed
            self.tolerance_adjustments += 1
        self._adapt_signatures = (hits, misses)
        self._adapt_tokens = (self.valid_tokens, self.padded_tokens)
        self._window_buckets.clear()

    def _complete_requests(self, batch: ScheduledBatch) -> None:
        """Mark a delivered batch's requests ``COMPLETED`` and record the
        SLO observability: delivery timestamps, goodput / late-completion
        counts, and per-priority-class latency histograms.  Runs on the
        overlap worker under ``overlap_demux``, hence the lock."""
        now = self.queue.clock()
        with self._metrics_lock:
            for request in batch.requests:
                request.mark(RequestState.COMPLETED)
                request.t_delivered = now
                if request.deadline is not None and now > request.deadline:
                    self.late_completions += 1
                else:
                    self.goodput_requests += 1
                hists = self.latency_by_priority.setdefault(
                    request.priority,
                    {"queue": LatencyHistogram(),
                     "execute": LatencyHistogram(),
                     "total": LatencyHistogram()})
                if request.t_submitted is not None:
                    if request.t_formed is not None:
                        hists["queue"].record(
                            request.t_formed - request.t_submitted)
                    if request.t_executed is not None:
                        hists["execute"].record(
                            request.t_executed
                            - (request.t_formed
                               if request.t_formed is not None
                               else request.t_submitted))
                    hists["total"].record(now - request.t_submitted)

    @staticmethod
    def _demux(batch: ScheduledBatch, out: np.ndarray) -> Dict[int, np.ndarray]:
        """Split packed outputs back into per-request rows (padding
        stripped).  Pure function of its arguments, so it can run on the
        overlap worker while the next batch executes."""
        rows = unpack_tokens(out, batch.padded_lengths)
        return {
            request.request_id: rows[slot][:request.length].copy()
            for slot, request in enumerate(batch.requests)
        }

    def _finish(self, batch: ScheduledBatch,
                out: np.ndarray) -> Dict[int, np.ndarray]:
        """Demultiplex a batch's outputs and complete its requests.

        Runs on the overlap worker when ``overlap_demux``; the demux
        injection point fires here, before the output is trusted.
        """
        injector = self._injector()
        if injector is not None:
            out = injector.fire("demux", out,
                                request_ids=frozenset(batch.request_ids))
        self._check_output(batch, out)
        results = self._demux(batch, out)
        self._complete_requests(batch)
        return results

    def _recover_demux(self, batch: ScheduledBatch,
                       out: np.ndarray) -> Dict[int, RequestResult]:
        """Retry a failed demux once; a second failure fails the batch's
        requests with structured results instead of raising."""
        self.demux_recoveries += 1
        try:
            return self._finish(batch, out)
        except Exception as exc:
            # The batch executed but its outputs cannot be delivered: all
            # of the batch-level accounting (_note_batch) is rolled back
            # -- not just num_completed -- so padding-overhead and
            # throughput stats stay consistent with delivered results,
            # and only requests that are not already terminal are marked
            # (and counted as) failed here.
            self._rollback_batch(batch)
            now = self.queue.clock()
            results: Dict[int, RequestResult] = {}
            for request in batch.requests:
                if not request.state.terminal:
                    request.mark(RequestState.FAILED)
                    self.failed_requests += 1
                    request.t_delivered = now
                results[request.request_id] = FailedResult.from_exception(
                    request.request_id, request.state, exc,
                    attempts=request.attempts)
            return results

    def _finish_with_recovery(self, batch: ScheduledBatch,
                              out: np.ndarray) -> Dict[int, RequestResult]:
        try:
            return self._finish(batch, out)
        except Exception:
            return self._recover_demux(batch, out)

    def _deliver(self, batch: ScheduledBatch,
                 out: np.ndarray) -> Dict[int, np.ndarray]:
        """Account, demux and complete a successfully executed batch
        (the synchronous path used during isolation re-runs)."""
        self._note_batch(batch)
        results = self._demux(batch, out)
        self._complete_requests(batch)
        return results

    # -- failure isolation ------------------------------------------------------

    def _isolate(self, batch: ScheduledBatch,
                 exc: BaseException) -> Dict[int, RequestResult]:
        """Bisect a failed batch to quarantine the poison request(s).

        The batch's requests are split in half and each half re-runs as
        its own (re-canonicalised) batch; halves that succeed deliver
        normally, halves that fail recurse.  A failing singleton spends
        its retry budget (exponential backoff, deadline-checked) and then
        resolves to a ``FAILED`` result carrying the original error --
        one bad request can no longer sink its batchmates.
        """
        requests = list(batch.requests)
        if len(requests) == 1:
            return self._resolve_singleton(requests[0], batch, exc)
        mid = len(requests) // 2
        results: Dict[int, RequestResult] = {}
        for half in (requests[:mid], requests[mid:]):
            sub = self._form_batch(half)
            self.isolation_runs += 1
            try:
                out = self._execute(sub, copy_outputs=False)
            except Exception as sub_exc:
                results.update(self._isolate(sub, sub_exc))
            else:
                results.update(self._deliver(sub, out))
        return results

    def _resolve_singleton(self, request: Request, batch: ScheduledBatch,
                           exc: BaseException) -> Dict[int, RequestResult]:
        """Retry an isolated failing request within its budget, then fail
        it terminally.

        The backoff sleep is capped (``max_backoff_s``) and never sleeps
        past the request's deadline, and the deadline is re-checked
        *after* sleeping -- so a retry cannot wake up expired and still
        burn an execution attempt.  The sleep goes through the injectable
        ``sleeper``, consistent with the injectable ``clock``, so tests
        (and the simulated-time benchmark) drive this path
        deterministically.
        """
        def _timed_out() -> Dict[int, RequestResult]:
            request.mark(RequestState.TIMED_OUT)
            self.timed_out_requests += 1
            request.t_delivered = self.queue.clock()
            return {request.request_id: FailedResult.from_exception(
                request.request_id, request.state,
                DeadlineExceeded(
                    f"request {request.request_id} missed its deadline "
                    f"during retries (last error: {exc})"),
                attempts=request.attempts)}

        retries_done = 0
        while retries_done < request.max_retries:
            now = self.queue.clock()
            if request.expired(now):
                return _timed_out()
            if self.retry_backoff_s > 0:
                backoff = min(self.retry_backoff_s * (2 ** retries_done),
                              self.max_backoff_s)
                if request.deadline is not None:
                    backoff = min(backoff,
                                  max(request.deadline - now, 0.0))
                if backoff > 0:
                    self._sleep(backoff)
                # Re-check after sleeping: if the deadline passed while
                # we were backing off, resolve TIMED_OUT without another
                # execution attempt.
                if request.expired(self.queue.clock()):
                    return _timed_out()
            retries_done += 1
            self.retries += 1
            self.isolation_runs += 1
            try:
                out = self._execute(batch, copy_outputs=False)
            except Exception as retry_exc:
                exc = retry_exc
                continue
            return self._deliver(batch, out)
        request.mark(RequestState.FAILED)
        self.failed_requests += 1
        request.t_delivered = self.queue.clock()
        return {request.request_id: FailedResult.from_exception(
            request.request_id, request.state, exc,
            attempts=request.attempts)}

    # -- worker-pool management -------------------------------------------------

    def _ensure_demux_pool(self):
        if self._demux_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._demux_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-demux")
        return self._demux_pool

    def close(self) -> None:
        """Shut down the overlap worker (idempotent -- safe to call
        repeatedly, including after a failed drain; recreated lazily if
        the scheduler is used again).  Does NOT close the session -- it
        may be shared; call ``session.close()`` separately."""
        pool, self._demux_pool = self._demux_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scheduling -------------------------------------------------------------

    def _collect_failures(self) -> Dict[int, RequestResult]:
        failures, self._failures = dict(self._failures), {}
        return failures

    def step(self) -> Dict[int, RequestResult]:
        """Schedule and run one batch; ``{}`` when nothing is pending.

        Returns the per-request results: a fresh ``(length,
        hidden_size)`` array per completed request (padding rows are
        stripped during demultiplexing), a :class:`FailedResult` per
        request that reached a non-``COMPLETED`` terminal state, plus
        any failures shed at admission since the last step.
        """
        results: Dict[int, RequestResult] = {}
        group = self._next_batches()
        results.update(self._collect_failures())
        if not group:
            return results
        packed = self._dispatch_wide(group, copy_outputs=False)
        if packed is not None:
            # All sub-batch outputs are views into the one fused run's
            # arena, valid until the session's next run -- demuxing them
            # in sequence is safe.
            for batch, out in zip(group, packed):
                self._note_batch(batch)
                results.update(self._finish_with_recovery(batch, out))
            return results
        for batch in group:
            try:
                # Zero-copy demux: the packed output stays an arena view,
                # valid until the session's next run -- which only happens
                # after the per-request rows have been copied out by
                # _demux.
                out = self._execute(batch, copy_outputs=False)
            except Exception as exc:
                results.update(self._isolate(batch, exc))
                continue
            self._note_batch(batch)
            results.update(self._finish_with_recovery(batch, out))
        return results

    def drain(self) -> Dict[int, RequestResult]:
        """Run scheduling steps until the queue is empty; merged results.

        With ``overlap_demux=True`` the drain is pipelined: batch ``k``'s
        outputs are copied out of the arena and handed to a background
        worker for demultiplexing while the main thread executes batch
        ``k + 1``.  Results are identical to the synchronous drain.
        Every submitted request appears exactly once in the returned
        mapping, as output rows or as a :class:`FailedResult`.
        """
        results: Dict[int, RequestResult] = {}
        if not self.overlap_demux:
            while len(self.queue):
                results.update(self.step())
            results.update(self._collect_failures())
            return results

        pool = self._ensure_demux_pool()
        inflight: List[Tuple[Any, ScheduledBatch, np.ndarray]] = []

        def _overlap(batch: ScheduledBatch, out: np.ndarray) -> None:
            self._note_batch(batch)
            inflight.append(
                (pool.submit(self._finish, batch, out), batch, out))
            self.overlapped_batches += 1

        try:
            while True:
                group = self._next_batches()
                if not group:
                    break
                # copy_outputs=True everywhere below: the demux worker
                # must not read arena views the next batch's execution
                # is about to overwrite.
                packed = self._dispatch_wide(group, copy_outputs=True)
                if packed is not None:
                    for batch, out in zip(group, packed):
                        _overlap(batch, out)
                    continue
                for batch in group:
                    try:
                        out = self._execute(batch, copy_outputs=True)
                    except Exception as exc:
                        results.update(self._isolate(batch, exc))
                        continue
                    _overlap(batch, out)
        finally:
            # Flush every outstanding future even if batch execution (or
            # isolation) raised: a pending demux future must never leak,
            # or the pool wedges and close() would block on it.
            for future, batch, out in inflight:
                try:
                    results.update(future.result())
                except Exception:
                    results.update(self._recover_demux(batch, out))
        results.update(self._collect_failures())
        return results

    # -- differential checking --------------------------------------------------

    def replay_bit_identical(self, results: Dict[int, RequestResult]) -> bool:
        """Re-run every logged batch directly through ``Session.run`` and
        compare against the demultiplexed ``results`` bit for bit.

        The differential check the serving tests and the benchmark smoke
        mode share: the scheduler's per-request outputs must be exactly
        the rows a direct program execution of the same (padded) batch
        produces.  Requires ``log_batches=True``.  Requests that resolved
        to a :class:`FailedResult` are skipped (they have no rows to
        compare).
        """
        if not self.log_batches:
            raise ValueError(
                "replay_bit_identical needs the batch log; construct the "
                "scheduler with log_batches=True")
        h = self.config.hidden_size
        for batch in self.batch_log:
            program = encoder_stack_program(
                batch.padded_lengths, self.weights, self.config,
                masked=self.masked, n_layers=self.n_layers,
                session=self.session)
            out = self.session.run(
                program,
                {"tokens": np.concatenate(batch.padded_inputs(h))},
            )["out_tokens"]
            rows = unpack_tokens(out, batch.padded_lengths)
            for slot, request in enumerate(batch.requests):
                result = results.get(request.request_id)
                if isinstance(result, FailedResult) or result is None:
                    continue
                if not np.array_equal(rows[slot][:request.length], result):
                    return False
        return True

    # -- statistics -------------------------------------------------------------

    def fusion_stats(self) -> Dict[Tuple[int, ...], Dict[str, Any]]:
        """Per-signature dispatch/fusion info for the compiled narrow
        programs this scheduler has served.

        Each signature it has seen maps to the compiled program's kernel
        and host dispatch counts plus (under a fusing session) the
        planner's fusion summary -- how many regions were formed and how
        many per-batch dispatches they eliminated.  Signatures whose
        narrow program was never compiled (e.g. only ever dispatched
        wide, degraded to op-by-op, or since evicted from the session's
        program cache) are omitted.

        Pure lookup: the program uids recorded at dispatch time are
        resolved against the session's cache, so calling this triggers
        zero program builds and zero compiles.
        """
        per_signature: Dict[Tuple[int, ...], Dict[str, Any]] = {}
        for signature, uid in self._program_uids.items():
            compiled = self.session.compiled_by_uid(uid)
            if compiled is None:
                continue
            info: Dict[str, Any] = {
                "kernel_dispatches": compiled.kernel_dispatches,
                "host_dispatches": compiled.host_dispatches,
            }
            summary = compiled.fusion_summary()
            if summary is not None:
                info["fusion"] = summary
            per_signature[signature] = info
        return per_signature

    def stats(self, include_fusion: bool = False) -> Dict[str, Any]:
        """Scheduler throughput counters plus the session's signature reuse.

        The session-derived counters are deltas since this scheduler was
        constructed, so earlier activity on a shared session is excluded.
        ``include_fusion=True`` adds the per-signature
        ``fusion_by_signature`` breakdown (still zero program builds --
        see :meth:`fusion_stats` -- but potentially large); the default
        keeps ``stats()`` cheap enough to poll per batch.
        """
        current = self._session_counters()
        with self._metrics_lock:
            latency_by_priority = {
                priority: {kind: hist.summary()
                           for kind, hist in hists.items()}
                for priority, hists in sorted(
                    self.latency_by_priority.items())}
            goodput_requests = self.goodput_requests
            late_completions = self.late_completions
        out = {
            "fuse": self.session.fuse,
            "pending": self.pending,
            "num_batches": self.num_batches,
            "num_completed": self.num_completed,
            "overlapped_batches": self.overlapped_batches,
            "valid_tokens": self.valid_tokens,
            "padded_tokens": self.padded_tokens,
            "padding_overhead": (
                self.padded_tokens / self.valid_tokens - 1.0
                if self.valid_tokens else 0.0),
            "distinct_signatures": len(self._signatures_seen),
            # fault-tolerance counters
            "failed_requests": self.failed_requests,
            "timed_out_requests": self.timed_out_requests,
            "rejected_requests": self.rejected_requests,
            "retries": self.retries,
            "isolation_runs": self.isolation_runs,
            "degraded_batches": self.degraded_batches,
            "engine_fallbacks": self.engine_fallbacks,
            "demux_recoveries": self.demux_recoveries,
            # wide-dispatch counters
            "wide_batches": self.wide_batches,
            "wide_dispatches": self.wide_dispatches,
            "wide_fallbacks": self.wide_fallbacks,
            "max_width_achieved": self.max_width_achieved,
            "engine_max_inflight": self.session.engine.stats().get(
                "max_inflight", 0),
            "shed_rejected": self.queue.rejected,
            "shed_expired": self.queue.expired_dropped,
            # SLO-aware serving counters
            "admission": self.admission.name,
            "bucket_tolerance": self.bucket_tolerance,
            "goodput_requests": goodput_requests,
            "late_completions": late_completions,
            "admission_fallbacks": self.admission_fallbacks,
            "tolerance_adjustments": self.tolerance_adjustments,
            "doomed_dropped": self.doomed_dropped,
            # schedule-DB traffic feedback (None when not wired)
            "traffic_dominant_share": (
                self.schedule_db.dominant_share()
                if self.schedule_db is not None else None),
            "latency_by_priority": latency_by_priority,
            **{key: current[key] - self._baseline[key]
               for key in current},
        }
        if include_fusion:
            out["fusion_by_signature"] = self.fusion_stats()
        return out


def _queue_full_error(queue: RequestQueue):
    from repro.core.errors import QueueFull

    return QueueFull(
        f"request queue at capacity ({queue.capacity}); shed policy "
        f"{queue.shed_policy!r} rejected the newest request")
