"""Ragged elementwise operators.

Elementwise operators touch every valid element exactly once; on ragged
data they are the simplest demonstration of padding savings (Figure 1 of the
paper is an elementwise scale).  They are also the operators CoRa fuses with
the padding-change operators in the transformer pipeline (Figure 3).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.core.ragged_tensor import RaggedTensor
from repro.substrates.costmodel import KernelLaunch


def _apply(x: RaggedTensor, fn: Callable[[np.ndarray], np.ndarray]) -> RaggedTensor:
    out = RaggedTensor.zeros(x.layout, dtype=x.dtype)
    for b, view in x.iter_slices():
        out.valid_slice(b)[...] = fn(view)
    return out


def scale(x: RaggedTensor, alpha: float) -> RaggedTensor:
    """``y = alpha * x`` over the valid region (the Figure 1 operator)."""
    return _apply(x, lambda v: alpha * v)


def add(x: RaggedTensor, y: RaggedTensor) -> RaggedTensor:
    """Elementwise sum of two ragged tensors with identical raggedness."""
    out = RaggedTensor.zeros(x.layout, dtype=x.dtype)
    for b, view in x.iter_slices():
        out.valid_slice(b)[...] = view + y.valid_slice(b)[tuple(slice(0, s) for s in view.shape)]
    return out


def bias_add(x: RaggedTensor, bias: np.ndarray) -> RaggedTensor:
    """Add a per-feature bias (broadcast over the ragged dimensions)."""
    return _apply(x, lambda v: v + bias)


def relu(x: RaggedTensor) -> RaggedTensor:
    """Rectified linear unit over the valid region."""
    return _apply(x, lambda v: np.maximum(v, 0.0))


def gelu(x: RaggedTensor) -> RaggedTensor:
    """Gaussian error linear unit (tanh approximation)."""
    def _gelu(v: np.ndarray) -> np.ndarray:
        return 0.5 * v * (1.0 + np.tanh(0.7978845608 * (v + 0.044715 * v ** 3)))
    return _apply(x, _gelu)


def residual_add(x: RaggedTensor, residual: RaggedTensor) -> RaggedTensor:
    """``y = x + residual`` -- the residual connections of the encoder layer."""
    return add(x, residual)


# -- program-graph node builders -----------------------------------------------


def add_node(program: "Program", x: str, y: str, name: str = "add",
             out: str = None) -> str:
    """Append an elementwise sum of two dense values (residual adds).

    Declared element-wise in both inputs: ``np.add`` is alias-safe when
    its output buffer is one of its operands, so the planner may schedule
    the sum in place over whichever input dies here, sharing its arena
    slab instead of double-buffering.
    """
    def _add(out_mat, a, b):
        np.add(a, b, out=out_mat)

    (value,) = program.add_host(
        name, _add, [x, y],
        output_shapes={out or name: program.dense_shape_of(x)},
        fills_output=True, elementwise=(x, y))
    return value


def relu_node(program: "Program", x: str, name: str = "relu",
              out: str = None) -> str:
    """Append a rectified linear unit over a dense value.

    Declared element-wise: ``np.maximum(a, 0.0, out=a)`` is alias-safe,
    so the activation may overwrite its input's slab in place when that
    input has no later reader.
    """
    def _relu(out_mat, a):
        np.maximum(a, 0.0, out=out_mat)

    (value,) = program.add_host(
        name, _relu, [x],
        output_shapes={out or name: program.dense_shape_of(x)},
        fills_output=True, elementwise=(x,))
    return value


# -- workload description -----------------------------------------------------


def elementwise_launch(
    name: str,
    valid_elements: float,
    ops_per_element: float = 1.0,
    impl_class: str = "compiler",
    bytes_per_element: float = 8.0,
) -> KernelLaunch:
    """Describe an elementwise kernel over ``valid_elements`` elements."""
    return KernelLaunch(
        name=name,
        flops=valid_elements * ops_per_element,
        bytes_moved=valid_elements * bytes_per_element,
        impl_class=impl_class,
        parallel_tasks=max(int(valid_elements // 4096), 1),
    )


def padding_change_launch(name: str, elements_moved: float,
                          impl_class: str = "handopt") -> KernelLaunch:
    """A padding add/remove/change operator (pure data movement).

    FasterTransformer launches these as separate kernels; CoRa fuses them
    into the neighbouring computation (Figure 3 / Figure 12), in which case
    no launch is emitted at all.
    """
    return KernelLaunch(
        name=name,
        flops=0.0,
        bytes_moved=elements_moved * 8.0,
        impl_class=impl_class,
        parallel_tasks=max(int(elements_moved // 4096), 1),
    )
