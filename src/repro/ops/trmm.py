"""Triangular matrix operators: trmm, tradd, trmul.

A lower-triangular matrix is a ragged tensor: row ``r`` holds ``r + 1``
densely packed non-zero elements (Section 7.1).  The paper evaluates:

* **trmm** -- lower-triangular ``L`` times dense ``B`` (Figure 10), compared
  against cuBLAS's hand-optimized ``trmm`` and its fully padded ``sgemm``,
  with three CoRa variants that progressively apply *operation splitting*
  (handle the partial tail tile of the variable reduction loop separately)
  and *thread remapping* (schedule the heaviest row-tiles first);
* **tradd / trmul** -- elementwise triangular add / multiply, used in the
  comparison against the Taco sparse compiler (Table 6).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent
from repro.core.ir import LoopVar
from repro.core.operator import compute, input_tensor, reduce_axis, sum_reduce
from repro.core.schedule import Schedule
from repro.core.tunespace import register_schedule_memo
from repro.substrates.costmodel import KernelLaunch, Workload, gemm_flops


# -- numeric implementations -----------------------------------------------------


def make_lower_triangular(n: int, seed: int = 0) -> np.ndarray:
    """A dense array holding a random lower-triangular matrix."""
    rng = np.random.default_rng(seed)
    full = rng.standard_normal((n, n)).astype(np.float32)
    return np.tril(full)


def trmm_reference(lower: np.ndarray, dense: np.ndarray) -> np.ndarray:
    """``lower @ dense`` computed with the dense gemm (ground truth)."""
    return np.asarray(lower) @ np.asarray(dense)


def trmm_ragged(lower: np.ndarray, dense: np.ndarray, tile: int = 64) -> np.ndarray:
    """CoRa-style trmm: each row-tile only reduces over its valid columns.

    The reduction loop of row block ``[r0, r1)`` runs to ``r1`` (the length
    of the longest row in the block), exactly what operation splitting plus
    tile-aligned scheduling achieves.
    """
    lower = np.asarray(lower, dtype=np.float32)
    dense = np.asarray(dense, dtype=np.float32)
    n = lower.shape[0]
    out = np.zeros((n, dense.shape[1]), dtype=np.float32)
    for r0 in range(0, n, tile):
        r1 = min(r0 + tile, n)
        out[r0:r1] = lower[r0:r1, :r1] @ dense[:r1]
    return out


def tradd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise sum of two lower-triangular matrices (valid region only)."""
    return np.tril(np.asarray(a) + np.asarray(b))


def trmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise product of two lower-triangular matrices."""
    return np.tril(np.asarray(a) * np.asarray(b))


def triangular_elements(n: int) -> int:
    """Number of valid elements of an ``n x n`` lower-triangular matrix."""
    return n * (n + 1) // 2


# -- compiled (executor-backed) implementation ------------------------------------


@lru_cache(maxsize=64)
def make_trmm_schedule(n: int) -> Schedule:
    """Describe ``lower @ dense`` as a CoRa operator with a *variable
    reduction bound*: row ``r`` only reduces over columns ``0 .. r``.

    Memoized per size so repeated calls hit the executor's kernel cache;
    treat the returned schedule as immutable.
    """
    row, col = Dim("row"), Dim("col")
    lower = input_tensor("L", [row, Dim("lk")],
                         [ConstExtent(n), ConstExtent(n)])
    dense = input_tensor("B", [Dim("bk"), col],
                         [ConstExtent(n), ConstExtent(n)])
    axis = reduce_axis(VarExtent(row, np.arange(1, n + 1)), "k")
    op = compute(
        "T", [row, col], [ConstExtent(n), ConstExtent(n)],
        lambda r, c: sum_reduce(
            lower[r, LoopVar(axis.dim)] * dense[LoopVar(axis.dim), c], axis),
    )
    return Schedule(op)


register_schedule_memo("trmm.schedule", make_trmm_schedule)


def trmm_node(program: "Program", lower: str, dense: str, n: int,
              name: str = "trmm", out: Optional[str] = None) -> str:
    """Append the triangular matmul kernel to a program graph.

    ``lower`` / ``dense`` name dense ``(n, n)`` values; the memoized
    variable-reduction-bound schedule of :func:`trmm_compiled` is reused.
    """
    from repro.core.storage import RaggedLayout

    n = int(n)
    out_layout = RaggedLayout([Dim("row"), Dim("col")],
                              [ConstExtent(n), ConstExtent(n)])
    return program.add_kernel(name, make_trmm_schedule(n),
                              {"L": lower, "B": dense}, out_layout, out=out)


def trmm_compiled(lower: np.ndarray, dense: np.ndarray,
                  backend: str = "vector",
                  executor: Optional["Executor"] = None,
                  ) -> Tuple[np.ndarray, "ExecutionReport"]:
    """Run trmm through the CoRa pipeline with the chosen codegen backend."""
    from repro.core.executor import shared_executor

    if executor is None:
        executor = shared_executor(backend)
    n = int(lower.shape[0])
    schedule = make_trmm_schedule(n)
    out, report = executor.build_and_run(
        schedule, {"L": np.asarray(lower, dtype=np.float32),
                   "B": np.asarray(dense, dtype=np.float32)})
    return out.to_dense(), report


# -- FLOP models -------------------------------------------------------------------


def trmm_ragged_flops(n: int, tile: int = 64, pad_reduction: bool = False) -> float:
    """FLOPs of the ragged trmm.

    With ``pad_reduction=True`` the variable reduction loop of each row tile
    is padded up to a multiple of the tile size (the *unsplit* variant);
    operation splitting removes that padding.
    """
    total = 0.0
    for r0 in range(0, n, tile):
        r1 = min(r0 + tile, n)
        depth = float(r1)
        if pad_reduction:
            depth = float(((r1 + tile - 1) // tile) * tile)
        total += 2.0 * (r1 - r0) * n * depth
    return total


def trmm_dense_flops(n: int) -> float:
    return gemm_flops(n, n, n)


# -- workload builders (Figure 10) ----------------------------------------------------


def _row_tile_work(n: int, tile: int, pad_reduction: bool) -> np.ndarray:
    """Per-row-tile (thread block row) work of the ragged trmm."""
    works = []
    for r0 in range(0, n, tile):
        r1 = min(r0 + tile, n)
        depth = float(((r1 + tile - 1) // tile) * tile) if pad_reduction else float(r1)
        for c0 in range(0, n, tile):
            works.append(2.0 * (r1 - r0) * min(tile, n - c0) * depth)
    return np.asarray(works)


def _tile_utilization(n: int, saturation: int = 2048) -> float:
    """Efficiency factor modelling poor tile utilisation of triangular
    kernels at small sizes (both cuBLAS trmm and CoRa suffer from it), which
    produces the paper's observation that trmm only beats the dense sgemm
    for larger matrices."""
    return n / (n + saturation)


#: Extra work factor triangular kernels pay at low tile utilisation.
_TRIANGULAR_OVERHEAD_SCALE = 2.0


def cublas_sgemm_workload(n: int) -> Workload:
    """cuBLAS's fully padded dense sgemm."""
    kernel = KernelLaunch(
        name="sgemm",
        flops=trmm_dense_flops(n),
        bytes_moved=3.0 * n * n * 4.0,
        impl_class="vendor",
        parallel_tasks=max((n // 64) ** 2, 1),
    )
    return Workload(name="CuBLAS sgemm", kernels=[kernel])


def cublas_trmm_workload(n: int, tile: int = 64) -> Workload:
    """cuBLAS's hand-optimized triangular matrix multiply."""
    work = _row_tile_work(n, tile, pad_reduction=False)
    kernel = KernelLaunch(
        name="trmm",
        flops=trmm_dense_flops(n) / 2.0,
        bytes_moved=2.5 * n * n * 4.0,
        impl_class="vendor",
        parallel_tasks=work.size,
        task_work=work,
        balanced=True,
        indirect_access_overhead=(1.0 - _tile_utilization(n))
        * _TRIANGULAR_OVERHEAD_SCALE,
    )
    return Workload(name="CuBLAS trmm", kernels=[kernel])


def cora_trmm_workload(n: int, tile: int = 64, split: bool = True,
                       balanced: bool = True) -> Workload:
    """The three CoRa trmm variants of Figure 10.

    ``split=False, balanced=False`` is CoRa-UnSplit-Unbalanced;
    ``split=True, balanced=False`` is CoRa-Split-Unbalanced;
    ``split=True, balanced=True``  is CoRa-Split-Balanced.
    """
    pad_reduction = not split
    work = _row_tile_work(n, tile, pad_reduction)
    kernel = KernelLaunch(
        name="trmm-cora",
        flops=trmm_ragged_flops(n, tile, pad_reduction=pad_reduction),
        bytes_moved=2.5 * n * n * 4.0,
        impl_class="compiler",
        parallel_tasks=work.size,
        task_work=work,
        balanced=balanced,
        indirect_access_overhead=0.02
        + (1.0 - _tile_utilization(n)) * _TRIANGULAR_OVERHEAD_SCALE
        + (0.15 if not split else 0.0),
    )
    label = "CoRa-{}-{}".format("Split" if split else "UnSplit",
                                "Balanced" if balanced else "Unbalanced")
    return Workload(name=label, kernels=[kernel])


# -- Table 6 helpers (CoRa side; the Taco side lives in baselines.sparse_compiler) --


def cora_triangular_elementwise_workload(n: int, op: str) -> Workload:
    """CoRa's tradd / trmul: one pass over the valid triangular elements."""
    elements = float(triangular_elements(n))
    kernel = KernelLaunch(
        name=f"{op}-cora",
        flops=elements,
        bytes_moved=3.0 * elements * 4.0,
        impl_class="compiler",
        parallel_tasks=max(int(elements // 4096), 1),
        indirect_access_overhead=0.02,
    )
    return Workload(name=f"CoRa {op}", kernels=[kernel])
