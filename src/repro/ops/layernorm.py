"""Ragged layer normalisation.

Layer normalisation acts independently on each token's hidden vector, so on
ragged data it is a per-valid-token operation with no cross-sequence
interaction -- exactly the kind of operator that needs no padding at all
once the token dimension has been fused (Section 7.2).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.substrates.costmodel import KernelLaunch, layernorm_flops


def layernorm_slices(hidden: Sequence[np.ndarray],
                     gamma: np.ndarray, beta: np.ndarray,
                     eps: float = 1e-5) -> List[np.ndarray]:
    """Layer-normalise each per-sequence ``(length, hidden)`` matrix."""
    out = []
    for h in hidden:
        mean = h.mean(axis=-1, keepdims=True)
        var = h.var(axis=-1, keepdims=True)
        out.append((h - mean) / np.sqrt(var + eps) * gamma + beta)
    return out


def layernorm_flat(tokens: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                   eps: float = 1e-5) -> np.ndarray:
    """Layer-normalise a flat ``(total_tokens, hidden)`` matrix.

    This is the form used after vloop fusion: all valid tokens of the batch
    are packed contiguously.
    """
    mean = tokens.mean(axis=-1, keepdims=True)
    var = tokens.var(axis=-1, keepdims=True)
    return (tokens - mean) / np.sqrt(var + eps) * gamma + beta


# -- program-graph node builder -----------------------------------------------


def layernorm_node(program: "Program", tokens: str, gamma: np.ndarray,
                   beta: np.ndarray, eps: float = 1e-5,
                   name: str = "layernorm", out: str = None) -> str:
    """Append a packed-token layer normalisation to a program graph.

    ``tokens`` names a dense ``(total_tokens, hidden)`` value; gamma/beta
    become program constants and the host step applies
    :func:`layernorm_flat` into the planned output buffer.
    """
    g = program.add_constant(f"{name}.gamma",
                             np.asarray(gamma, dtype=np.float32))
    b = program.add_constant(f"{name}.beta",
                             np.asarray(beta, dtype=np.float32))

    def _layernorm(out_mat, toks, g_vec, b_vec):
        out_mat[...] = layernorm_flat(toks, g_vec, b_vec, eps=eps)

    (value,) = program.add_host(
        name, _layernorm, [tokens, g, b],
        output_shapes={out or name: program.dense_shape_of(tokens)},
        fills_output=True)
    return value


def layernorm_launch(total_tokens: float, hidden: int,
                     impl_class: str = "compiler",
                     name: str = "LayerNorm") -> KernelLaunch:
    """Describe a layer-normalisation kernel over ``total_tokens`` tokens."""
    flops = layernorm_flops(total_tokens, hidden)
    return KernelLaunch(
        name=name,
        flops=flops,
        bytes_moved=total_tokens * hidden * 8.0,
        impl_class=impl_class,
        parallel_tasks=max(int(total_tokens), 1),
    )
