"""Fused-vloop linear transformations (Proj1, Proj2, FF1, FF2).

All linear operators of the encoder layer act independently on every token's
hidden vector, so (Section 7.2) they can be implemented *without any
padding* by fusing the ``batch`` and ``sequence`` vloops into a single loop
over all valid tokens: the operator then reduces to a single
``(total_tokens, in) @ (in, out)`` gemm.  CoRa expresses this with
``fuse_loops`` + ``fuse_dimensions`` and only adds *bulk padding* -- a
synthetic padding "sequence" that makes the total token count a multiple of
64 -- so the gemm can be tiled without a tail.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.extents import ceil_to
from repro.core.prelude import bulk_pad_lengths
from repro.substrates.costmodel import KernelLaunch, gemm_flops


def pack_tokens(hidden: Sequence[np.ndarray]) -> np.ndarray:
    """Pack per-sequence ``(length, hidden)`` matrices into one flat matrix.

    This is the runtime effect of fusing the batch and sequence dimensions:
    the result has shape ``(sum of lengths, hidden)``.
    """
    return np.concatenate([np.asarray(h) for h in hidden], axis=0)


def unpack_tokens(flat: np.ndarray, lengths: Sequence[int]) -> List[np.ndarray]:
    """Split a packed token matrix back into per-sequence matrices."""
    out = []
    start = 0
    for n in lengths:
        out.append(flat[start:start + int(n)])
        start += int(n)
    return out


def linear_packed(tokens: np.ndarray, weight: np.ndarray,
                  bias: Optional[np.ndarray] = None) -> np.ndarray:
    """``tokens @ weight + bias`` on the packed (fused) token matrix."""
    out = tokens @ weight
    if bias is not None:
        out = out + bias
    return out


def linear_slices(hidden: Sequence[np.ndarray], weight: np.ndarray,
                  bias: Optional[np.ndarray] = None) -> List[np.ndarray]:
    """Per-sequence linear transformation (reference implementation)."""
    out = []
    for h in hidden:
        y = np.asarray(h) @ weight
        if bias is not None:
            y = y + bias
        out.append(y)
    return out


# -- program-graph node builder -----------------------------------------------


def linear_node(program: "Program", tokens: str, weight: np.ndarray,
                bias: Optional[np.ndarray] = None, name: str = "linear",
                out: Optional[str] = None) -> str:
    """Append a packed (fused-vloop) linear transformation to a program.

    ``tokens`` names a dense ``(total_tokens, in_features)`` value; the
    weight (and optional bias) become program constants.  The host step
    writes ``tokens @ weight + bias`` straight into the planned output
    buffer -- the runtime form of CoRa's fused projection operators.
    """
    weight = np.asarray(weight, dtype=np.float32)
    w = program.add_constant(f"{name}.w", weight)
    inputs = [tokens, w]
    if bias is not None:
        inputs.append(program.add_constant(
            f"{name}.b", np.asarray(bias, dtype=np.float32)))

    if bias is None:
        def _linear(out_mat, toks, w_mat):
            np.matmul(toks, w_mat, out=out_mat)
    else:
        def _linear(out_mat, toks, w_mat, b_vec):
            np.matmul(toks, w_mat, out=out_mat)
            out_mat += b_vec

    n_tokens = program.dense_shape_of(tokens)[0]
    (value,) = program.add_host(
        name, _linear, inputs,
        output_shapes={out or name: (n_tokens, int(weight.shape[1]))},
        fills_output=True)
    return value


def projection_launch(
    lengths: Sequence[int],
    in_features: int,
    out_features: int,
    name: str,
    impl_class: str = "compiler",
    bulk_pad: int = 64,
    fully_padded: bool = False,
    fused_epilogue_flops_per_token: float = 0.0,
) -> KernelLaunch:
    """Describe one linear-transformation kernel of the encoder layer.

    With ``fully_padded=True`` every sequence is padded to the batch maximum
    (the PyTorch / FT strategy); otherwise the token count is the sum of the
    lengths, bulk-padded to a multiple of ``bulk_pad`` (the CoRa / FT-Eff
    strategy).  ``fused_epilogue_flops_per_token`` accounts for bias /
    residual / activation work CoRa fuses into the same kernel.
    """
    s = np.asarray(lengths, dtype=np.int64)
    if fully_padded:
        tokens = float(s.size * s.max())
    else:
        padded, _ = bulk_pad_lengths(s, bulk_pad) if bulk_pad > 1 else (s, 0)
        tokens = float(padded.sum())
    flops = gemm_flops(tokens, out_features, in_features)
    flops += tokens * fused_epilogue_flops_per_token
    bytes_moved = (tokens * in_features + tokens * out_features
                   + in_features * out_features) * 4.0
    # Small token counts cannot amortise tile / panel setup in the gemm
    # micro-kernel: efficiency drops for tiny problems.  This is what limits
    # how far micro-batched execution (TF-UB / PT-UB) can shrink its
    # micro-batches (Table 9) and why CoRa's own schedules lose some ground
    # at very small batch sizes (Section 7.2).
    small_problem_overhead = 0.9 * max(0.0, 1.0 - tokens / 1536.0)
    return KernelLaunch(
        name=name,
        flops=flops,
        bytes_moved=bytes_moved,
        impl_class=impl_class,
        parallel_tasks=max(int(tokens // 64) * max(out_features // 64, 1), 1),
        indirect_access_overhead=small_problem_overhead,
    )
