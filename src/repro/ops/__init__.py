"""Ragged operator library.

Each module provides, for one family of ragged operators:

* a **numeric implementation** operating on ragged data (lists of per-slice
  arrays or :class:`~repro.core.ragged_tensor.RaggedTensor`), used by the
  correctness tests and the examples.  The inner dense tiles are delegated
  to NumPy, mirroring how CoRa's CPU backend offloads inner gemm tiles to
  MKL / OpenBLAS micro-kernels (Section 7.1);
* a **workload builder** returning
  :class:`~repro.substrates.costmodel.KernelLaunch` objects describing the
  execution (FLOPs, bytes, parallelism, load balance, implementation class)
  so the benchmark harness can evaluate it on a simulated device;
* where relevant, **baseline variants** (fully padded, hand-optimized,
  unsplit/unbalanced ...) matching the configurations compared in the
  paper's figures.
"""

from repro.ops import attention, elementwise, layernorm, projection, softmax, trmm, vgemm

__all__ = [
    "elementwise",
    "softmax",
    "layernorm",
    "projection",
    "vgemm",
    "trmm",
    "attention",
]
