"""Variable-sized batched matrix multiplication (vgemm).

The vgemm operator (Section 7.1, Figure 9) multiplies a batch of matrix
pairs whose dimensions differ per batch element.  The paper compares:

* **Ragged-CoRa** -- CoRa-generated code iterating only over each instance's
  actual dimensions (inner tiles offloaded to the vendor micro-kernel on the
  CPU backend);
* **Ragged-HandOptimized** -- a hand-written vgemm (prior work on the GPU,
  MKL's grouped gemm on the CPU);
* **FullyPadded-HandOptimized** -- the vendor library's *fixed-size* batched
  gemm after padding every instance to the batch maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent
from repro.core.ir import LoopVar
from repro.core.operator import compute, input_tensor, reduce_axis, sum_reduce
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout
from repro.core.tunespace import register_schedule_memo
from repro.data.datasets import uniform_multiple_lengths
from repro.substrates.costmodel import KernelLaunch, Workload, gemm_flops


@dataclass(frozen=True)
class VgemmProblem:
    """One vgemm workload: per-instance (m, n, k) dimensions."""

    ms: np.ndarray
    ns: np.ndarray
    ks: np.ndarray

    @property
    def batch_size(self) -> int:
        return int(self.ms.size)

    def instance_dims(self, i: int) -> Tuple[int, int, int]:
        return int(self.ms[i]), int(self.ns[i]), int(self.ks[i])

    def ragged_flops(self) -> float:
        return float((2.0 * self.ms * self.ns * self.ks).sum())

    def padded_flops(self) -> float:
        return float(2.0 * self.batch_size
                     * self.ms.max() * self.ns.max() * self.ks.max())


def paper_problem(batch_size: int, seed: int = 0,
                  low: int = 512, high: int = 1408, multiple: int = 128,
                  ) -> VgemmProblem:
    """The synthetic workload of Section 7.1: dims are uniform multiples of
    128 in [512, 1408]."""
    ms = uniform_multiple_lengths(batch_size, low, high, multiple, seed=seed)
    ns = uniform_multiple_lengths(batch_size, low, high, multiple, seed=seed + 1)
    ks = uniform_multiple_lengths(batch_size, low, high, multiple, seed=seed + 2)
    return VgemmProblem(ms=ms, ns=ns, ks=ks)


# -- numeric implementations ----------------------------------------------------


def vgemm_reference(a_list: Sequence[np.ndarray], b_list: Sequence[np.ndarray],
                    ) -> List[np.ndarray]:
    """Per-instance matrix products (the definitionally correct result)."""
    return [np.asarray(a) @ np.asarray(b) for a, b in zip(a_list, b_list)]


def vgemm_cora(a_list: Sequence[np.ndarray], b_list: Sequence[np.ndarray],
               tile: int = 64) -> List[np.ndarray]:
    """CoRa-style execution: iterate instances, offload inner tiles to the
    dense micro-kernel (NumPy's gemm standing in for MKL / cuBLAS tiles)."""
    out = []
    for a, b in zip(a_list, b_list):
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError("inner dimensions do not match")
        c = np.zeros((m, n), dtype=np.float32)
        for i0 in range(0, m, tile):
            i1 = min(i0 + tile, m)
            c[i0:i1] = a[i0:i1] @ b
        out.append(c)
    return out


def vgemm_fully_padded(a_list: Sequence[np.ndarray], b_list: Sequence[np.ndarray],
                       ) -> List[np.ndarray]:
    """The padded baseline: pad every instance to the batch maximum, run a
    fixed-size batched gemm, then slice out the valid regions."""
    ms = [a.shape[0] for a in a_list]
    ks = [a.shape[1] for a in a_list]
    ns = [b.shape[1] for b in b_list]
    mmax, kmax, nmax = max(ms), max(ks), max(ns)
    batch = len(a_list)
    a_pad = np.zeros((batch, mmax, kmax), dtype=np.float32)
    b_pad = np.zeros((batch, kmax, nmax), dtype=np.float32)
    for i, (a, b) in enumerate(zip(a_list, b_list)):
        a_pad[i, :a.shape[0], :a.shape[1]] = a
        b_pad[i, :b.shape[0], :b.shape[1]] = b
    c_pad = a_pad @ b_pad
    return [c_pad[i, :ms[i], :ns[i]] for i in range(batch)]


def random_instances(problem: VgemmProblem, seed: int = 0,
                     ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Random input matrices matching a vgemm problem's dimensions."""
    rng = np.random.default_rng(seed)
    a_list, b_list = [], []
    for i in range(problem.batch_size):
        m, n, k = problem.instance_dims(i)
        a_list.append(rng.standard_normal((m, k)).astype(np.float32))
        b_list.append(rng.standard_normal((k, n)).astype(np.float32))
    return a_list, b_list


# -- compiled (executor-backed) implementation ------------------------------------


def make_vgemm_schedule(ms: Sequence[int], ns: Sequence[int],
                        ks: Sequence[int]) -> Schedule:
    """Describe the vgemm batch as a single CoRa ragged operator.

    ``C[b, i, j] = sum_k A[b, i, k] * B[b, k, j]`` with all three inner
    extents variable per batch instance.  Schedules are memoized per
    dimension tuple -- repeated calls with equal problems return the *same*
    schedule object so the executor's kernel cache hits; treat it as
    immutable (copy the operator before rescheduling).
    """
    ms = np.ascontiguousarray(ms, dtype=np.int64)
    ns = np.ascontiguousarray(ns, dtype=np.int64)
    ks = np.ascontiguousarray(ks, dtype=np.int64)
    return _vgemm_schedule_memo(ms.tobytes(), ns.tobytes(), ks.tobytes())


@lru_cache(maxsize=64)
def _vgemm_schedule_memo(ms_bytes: bytes, ns_bytes: bytes,
                         ks_bytes: bytes) -> Schedule:
    ms = np.frombuffer(ms_bytes, dtype=np.int64)
    ns = np.frombuffer(ns_bytes, dtype=np.int64)
    ks = np.frombuffer(ks_bytes, dtype=np.int64)
    bsz = int(ms.size)
    batch, i, j = Dim("batch"), Dim("i"), Dim("j")
    a = input_tensor("A", [batch, Dim("ar"), Dim("ac")],
                     [ConstExtent(bsz), VarExtent(batch, ms),
                      VarExtent(batch, ks)])
    b = input_tensor("B", [batch, Dim("br"), Dim("bc")],
                     [ConstExtent(bsz), VarExtent(batch, ks),
                      VarExtent(batch, ns)])
    axis = reduce_axis(VarExtent(batch, ks), "k")
    op = compute(
        "C", [batch, i, j],
        [ConstExtent(bsz), VarExtent(batch, ms), VarExtent(batch, ns)],
        lambda bb, ii, jj: sum_reduce(
            a[bb, ii, LoopVar(axis.dim)] * b[bb, LoopVar(axis.dim), jj], axis),
    )
    return Schedule(op)


register_schedule_memo("vgemm.schedule", _vgemm_schedule_memo)


def vgemm_layouts(ms: Sequence[int], ns: Sequence[int], ks: Sequence[int],
                  ) -> Tuple[RaggedLayout, RaggedLayout, RaggedLayout]:
    """The ragged layouts of the A / B / C tensors of one vgemm batch."""
    ms = np.asarray(ms, dtype=np.int64)
    ns = np.asarray(ns, dtype=np.int64)
    ks = np.asarray(ks, dtype=np.int64)
    bsz = int(ms.size)
    batch = Dim("batch")
    layout_a = RaggedLayout(
        [batch, Dim("ar"), Dim("ac")],
        [ConstExtent(bsz), VarExtent(batch, ms), VarExtent(batch, ks)])
    layout_b = RaggedLayout(
        [batch, Dim("br"), Dim("bc")],
        [ConstExtent(bsz), VarExtent(batch, ks), VarExtent(batch, ns)])
    layout_c = RaggedLayout(
        [batch, Dim("cr"), Dim("cc")],
        [ConstExtent(bsz), VarExtent(batch, ms), VarExtent(batch, ns)])
    return layout_a, layout_b, layout_c


def vgemm_ragged_inputs(a_list: Sequence[np.ndarray],
                        b_list: Sequence[np.ndarray]) -> Dict[str, RaggedTensor]:
    """Pack the per-instance matrices into the ragged input tensors of
    :func:`make_vgemm_schedule`."""
    ms = [a.shape[0] for a in a_list]
    ks = [a.shape[1] for a in a_list]
    ns = [b.shape[1] for b in b_list]
    layout_a, layout_b, _ = vgemm_layouts(ms, ns, ks)
    return {
        "A": RaggedTensor.from_slices(layout_a, list(a_list)),
        "B": RaggedTensor.from_slices(layout_b, list(b_list)),
    }


def vgemm_node(program: "Program", a: str, b: str, ms: Sequence[int],
               ns: Sequence[int], ks: Sequence[int], name: str = "vgemm",
               out: Optional[str] = None) -> str:
    """Append the variable-sized batched matmul kernel to a program graph.

    ``a`` / ``b`` name ragged values laid out per :func:`vgemm_layouts`;
    the memoized schedule of :func:`vgemm_compiled` is reused so session
    compilation shares the executor's kernel cache.
    """
    _, _, layout_c = vgemm_layouts(ms, ns, ks)
    schedule = make_vgemm_schedule(ms, ns, ks)
    return program.add_kernel(name, schedule, {"A": a, "B": b}, layout_c,
                              out=out)


def vgemm_compiled(a_list: Sequence[np.ndarray], b_list: Sequence[np.ndarray],
                   backend: str = "vector",
                   executor: Optional["Executor"] = None,
                   ) -> Tuple[List[np.ndarray], "ExecutionReport"]:
    """Run the vgemm batch through the CoRa pipeline (lower, codegen, run).

    ``backend`` selects the code generator (``"vector"`` or ``"scalar"``);
    pass an :class:`~repro.core.executor.Executor` to share its kernel
    cache across calls.
    """
    from repro.core.executor import shared_executor

    if executor is None:
        executor = shared_executor(backend)
    ms = [a.shape[0] for a in a_list]
    ns = [b.shape[1] for b in b_list]
    ks = [a.shape[1] for a in a_list]
    schedule = make_vgemm_schedule(ms, ns, ks)
    out, report = executor.build_and_run(schedule,
                                         vgemm_ragged_inputs(a_list, b_list))
    return [out.valid_slice(i) for i in range(len(a_list))], report


# -- workload builders (Figure 9) -------------------------------------------------


def _task_work(problem: VgemmProblem, tile: int) -> np.ndarray:
    """Per-thread-block work: one task per (m-tile, n-tile) of each instance."""
    works = []
    for i in range(problem.batch_size):
        m, n, k = problem.instance_dims(i)
        tiles = max(m // tile, 1) * max(n // tile, 1)
        works.extend([2.0 * tile * tile * k] * tiles)
    return np.asarray(works)


def cora_workload(problem: VgemmProblem, tile: int = 64) -> Workload:
    """Ragged-CoRa: compiler-generated code over the actual dimensions."""
    work = _task_work(problem, tile)
    kernel = KernelLaunch(
        name="vgemm-cora",
        flops=problem.ragged_flops(),
        bytes_moved=float((problem.ms * problem.ks + problem.ks * problem.ns
                           + problem.ms * problem.ns).sum()) * 4.0,
        impl_class="compiler",
        parallel_tasks=work.size,
        task_work=work,
        balanced=True,
        indirect_access_overhead=0.02,
    )
    return Workload(name="Ragged-CoRa", kernels=[kernel])


def hand_optimized_workload(problem: VgemmProblem, tile: int = 64) -> Workload:
    """Ragged-HandOptimized: prior work's hand-written vgemm kernels."""
    work = _task_work(problem, tile)
    kernel = KernelLaunch(
        name="vgemm-handopt",
        flops=problem.ragged_flops(),
        bytes_moved=float((problem.ms * problem.ks + problem.ks * problem.ns
                           + problem.ms * problem.ns).sum()) * 4.0,
        impl_class="handopt",
        parallel_tasks=work.size,
        task_work=work,
        balanced=True,
        # The hand-written vgemm of prior work handles the per-instance
        # dimension bookkeeping with somewhat more per-tile overhead than
        # CoRa's specialised generated code, which is why CoRa matches or
        # slightly beats it on the GPU (Section 7.1).
        indirect_access_overhead=0.06,
    )
    return Workload(name="Ragged-HandOptimized", kernels=[kernel])


def fully_padded_workload(problem: VgemmProblem, tile: int = 64) -> Workload:
    """FullyPadded-HandOptimized: the vendor library's fixed-size batched gemm."""
    mmax, nmax, kmax = problem.ms.max(), problem.ns.max(), problem.ks.max()
    tiles = problem.batch_size * max(mmax // tile, 1) * max(nmax // tile, 1)
    kernel = KernelLaunch(
        name="vgemm-padded",
        flops=problem.padded_flops(),
        bytes_moved=float(problem.batch_size
                          * (mmax * kmax + kmax * nmax + mmax * nmax)) * 4.0,
        impl_class="vendor",
        parallel_tasks=int(tiles),
    )
    return Workload(name="FullyPadded-HandOptimized", kernels=[kernel])
