"""Attention operators: QK^T, AttnV and (masked) scaled dot-product attention.

These are the only operators of the encoder layer whose cost is *quadratic*
in the sequence length, and the only ones for which even the optimized
FasterTransformer baseline falls back to full padding -- which is why they
are where CoRa's minimal padding wins the most (Figure 13).  The module
provides:

* numeric per-sequence implementations (used for correctness tests and the
  examples);
* workload builders for the padded / partially padded variants;
* the *operation splitting* + *horizontal fusion* variants evaluated on
  AttnV (Figure 14) and QK^T (Figures 20-21);
* the masked SDPA variants of Figure 18 (CoRa-NoPad / CoRa-Pad / PyTorch).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent, ceil_to
from repro.core.ir import LoopVar
from repro.core.operator import compute, input_tensor, reduce_axis, sum_reduce
from repro.core.ragged_tensor import RaggedTensor
from repro.core.storage import RaggedLayout
from repro.core.schedule import Schedule
from repro.core.tunespace import (
    TuneParam,
    TunePoint,
    TuneSpace,
    applied_point,
    register_schedule_memo,
    register_tune_op,
)
from repro.models.config import PAPER_BASE_CONFIG, TransformerConfig
from repro.ops.softmax import softmax_compiled, softmax_slices
from repro.substrates.costmodel import KernelLaunch, Workload, gemm_flops


# ---------------------------------------------------------------------------
# Numeric implementations (per-sequence; heads kept as a leading axis)
# ---------------------------------------------------------------------------


def qkt_slices(q: Sequence[np.ndarray], k: Sequence[np.ndarray],
               scale: Optional[float] = None) -> List[np.ndarray]:
    """Per-sequence attention scores ``Q K^T``.

    Each ``q[i]`` / ``k[i]`` has shape ``(heads, s_i, head_size)``; the
    result has shape ``(heads, s_i, s_i)``.
    """
    out = []
    for qi, ki in zip(q, k):
        scores = np.einsum("hid,hjd->hij", qi, ki)
        if scale is not None:
            scores = scores * scale
        out.append(scores.astype(np.float32))
    return out


def attnv_slices(attn: Sequence[np.ndarray], v: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Per-sequence ``softmax(QK^T) @ V`` products.

    ``attn[i]`` has shape ``(heads, s_i, s_i)``, ``v[i]`` has shape
    ``(heads, s_i, head_size)``; the result has shape
    ``(heads, s_i, head_size)``.
    """
    return [np.einsum("hij,hjd->hid", a, vi).astype(np.float32)
            for a, vi in zip(attn, v)]


def sdpa_slices(q: Sequence[np.ndarray], k: Sequence[np.ndarray],
                v: Sequence[np.ndarray], head_size: int,
                masked: bool = False) -> List[np.ndarray]:
    """Full scaled dot-product attention per sequence.

    With ``masked=True`` the upper-triangular half of each attention matrix
    is masked out (decoder-style causal masking, Section D.3).
    """
    scale = 1.0 / np.sqrt(head_size)
    scores = qkt_slices(q, k, scale=scale)
    if masked:
        masked_scores = []
        for s in scores:
            length = s.shape[-1]
            tri = np.tril(np.ones((length, length), dtype=bool))
            masked_scores.append(np.where(tri[None, :, :], s, -np.inf))
        scores = masked_scores
    probs = softmax_slices(scores)
    if masked:
        probs = [np.nan_to_num(p, nan=0.0) for p in probs]
    return attnv_slices(probs, v)


def sdpa_dense_reference(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                         lengths: Sequence[int], head_size: int,
                         masked: bool = False) -> np.ndarray:
    """The fully padded baseline: dense batched attention with masking.

    ``q, k, v`` have shape ``(batch, heads, max_len, head_size)``.  Padding
    columns are masked before the softmax so the valid region matches the
    ragged implementation.
    """
    lengths = np.asarray(lengths)
    batch, heads, max_len, _ = q.shape
    scale = 1.0 / np.sqrt(head_size)
    scores = np.einsum("bhid,bhjd->bhij", q, k) * scale
    col = np.arange(max_len)
    valid = col[None, :] < lengths[:, None]
    mask = valid[:, None, None, :]
    if masked:
        tri = np.tril(np.ones((max_len, max_len), dtype=bool))
        mask = mask & tri[None, None, :, :]
    scores = np.where(mask, scores, -np.inf)
    scores = scores - scores.max(axis=-1, keepdims=True)
    e = np.exp(scores)
    probs = e / np.maximum(e.sum(axis=-1, keepdims=True), 1e-30)
    probs = np.nan_to_num(probs, nan=0.0)
    return np.einsum("bhij,bhjd->bhid", probs, v).astype(np.float32)


def random_qkv(lengths: Sequence[int], config: TransformerConfig = PAPER_BASE_CONFIG,
               seed: int = 0) -> Dict[str, List[np.ndarray]]:
    """Random per-sequence Q/K/V tensors for the given lengths."""
    rng = np.random.default_rng(seed)
    q, k, v = [], [], []
    for s in lengths:
        shape = (config.num_heads, int(s), config.head_size)
        q.append(rng.standard_normal(shape).astype(np.float32))
        k.append(rng.standard_normal(shape).astype(np.float32))
        v.append(rng.standard_normal(shape).astype(np.float32))
    return {"q": q, "k": k, "v": v}


# ---------------------------------------------------------------------------
# Compiled (executor-backed) implementations
# ---------------------------------------------------------------------------


def _qkv_layout(lengths: np.ndarray, heads: int, head_size: int) -> RaggedLayout:
    """Layout of a per-sequence ``[batch, heads, s(b), head_size]`` tensor."""
    batch = Dim("batch")
    return RaggedLayout(
        [batch, Dim("head"), Dim("seq"), Dim("hd")],
        [ConstExtent(lengths.size), ConstExtent(heads),
         VarExtent(batch, lengths), ConstExtent(head_size)])


@lru_cache(maxsize=64)
def _qkt_schedule(lens_bytes: bytes, heads: int, head_size: int,
                  scale: Optional[float]) -> Schedule:
    """Memoized QK^T schedule (same object per problem -> kernel-cache hits)."""
    lens = np.frombuffer(lens_bytes, dtype=np.int64)
    bsz = int(lens.size)
    batch, head, qi, kj = Dim("batch"), Dim("head"), Dim("qi"), Dim("kj")
    q_in = input_tensor("Q", [batch, Dim("qh"), Dim("qs"), Dim("qd")],
                        [ConstExtent(bsz), ConstExtent(heads),
                         VarExtent(batch, lens), ConstExtent(head_size)])
    k_in = input_tensor("K", [batch, Dim("kh"), Dim("ks"), Dim("kd")],
                        [ConstExtent(bsz), ConstExtent(heads),
                         VarExtent(batch, lens), ConstExtent(head_size)])
    dax = reduce_axis(head_size, "d")

    def body(b, h, i, j):
        scores = sum_reduce(
            q_in[b, h, i, LoopVar(dax.dim)] * k_in[b, h, j, LoopVar(dax.dim)],
            dax)
        return scores * float(scale) if scale is not None else scores

    op = compute("QKT", [batch, head, qi, kj],
                 [ConstExtent(bsz), ConstExtent(heads),
                  VarExtent(batch, lens), VarExtent(batch, lens)],
                 body)
    return Schedule(op)


def qkt_compiled(q: Sequence[np.ndarray], k: Sequence[np.ndarray],
                 scale: Optional[float] = None,
                 backend: str = "vector",
                 executor: Optional["Executor"] = None,
                 ) -> Tuple[List[np.ndarray], "ExecutionReport"]:
    """``Q K^T`` through the CoRa pipeline (per-sequence ragged scores).

    ``q[b]`` / ``k[b]`` have shape ``(heads, s_b, head_size)``; the result
    slices have shape ``(heads, s_b, s_b)``.
    """
    from repro.core.executor import shared_executor

    if executor is None:
        executor = shared_executor(backend)
    lens = np.ascontiguousarray([x.shape[1] for x in q], dtype=np.int64)
    heads, head_size = int(q[0].shape[0]), int(q[0].shape[2])
    bsz = int(lens.size)
    schedule = _qkt_schedule(lens.tobytes(), heads, head_size,
                             None if scale is None else float(scale))
    layout = _qkv_layout(lens, heads, head_size)
    inputs = {"Q": RaggedTensor.from_slices(layout, list(q)),
              "K": RaggedTensor.from_slices(layout, list(k))}
    out, report = executor.build_and_run(schedule, inputs)
    return [out.valid_slice(b) for b in range(bsz)], report


@lru_cache(maxsize=64)
def _qkt_split_schedule(lens_bytes: bytes, heads: int, head_size: int,
                        scale: Optional[float], tile: int,
                        remap: bool) -> Schedule:
    """QK^T with the query-row vloop split by ``tile`` (guarded tail tile)
    and optionally a sort-descending thread remap on the governing loop --
    the same knobs the Figure 14 AttnV variants expose, made tunable."""
    schedule = _qkt_schedule(lens_bytes, heads, head_size, scale)
    op = schedule.operator
    # Schedules are memoized; never mutate the shared unsplit instance.
    schedule = Schedule(op)
    qi = op.dims[2]
    schedule.split(qi, int(tile))
    if remap:
        batch = op.dims[0]
        schedule.parallel(batch)
        schedule.thread_remap(batch, "sort_desc")
    return schedule


@lru_cache(maxsize=64)
def _attnv_schedule(lens_bytes: bytes, heads: int, head_size: int) -> Schedule:
    """Memoized AttnV schedule (same object per problem -> kernel-cache hits)."""
    lens = np.frombuffer(lens_bytes, dtype=np.int64)
    bsz = int(lens.size)
    batch, head, qi, hd = Dim("batch"), Dim("head"), Dim("qi"), Dim("hd")
    a_in = input_tensor("Attn", [batch, Dim("ah"), Dim("ai"), Dim("aj")],
                        [ConstExtent(bsz), ConstExtent(heads),
                         VarExtent(batch, lens), VarExtent(batch, lens)])
    v_in = input_tensor("V", [batch, Dim("vh"), Dim("vs"), Dim("vd")],
                        [ConstExtent(bsz), ConstExtent(heads),
                         VarExtent(batch, lens), ConstExtent(head_size)])
    jax = reduce_axis(VarExtent(batch, lens), "j")
    op = compute("AttnV", [batch, head, qi, hd],
                 [ConstExtent(bsz), ConstExtent(heads),
                  VarExtent(batch, lens), ConstExtent(head_size)],
                 lambda b, h, i, d: sum_reduce(
                     a_in[b, h, i, LoopVar(jax.dim)]
                     * v_in[b, h, LoopVar(jax.dim), d], jax))
    return Schedule(op)


def _run_attnv(attn: Sequence[np.ndarray], v: Sequence[np.ndarray],
               schedule_of, executor: "Executor",
               ) -> Tuple[List[np.ndarray], "ExecutionReport"]:
    """Marshal AttnV inputs, run ``schedule_of(lens, heads, head_size)``."""
    from repro.ops.softmax import attention_scores_layout

    lens = np.ascontiguousarray([x.shape[1] for x in v], dtype=np.int64)
    heads, head_size = int(v[0].shape[0]), int(v[0].shape[2])
    bsz = int(lens.size)
    schedule = schedule_of(lens, heads, head_size)
    inputs = {
        "Attn": RaggedTensor.from_slices(attention_scores_layout(lens, heads),
                                         list(attn)),
        "V": RaggedTensor.from_slices(_qkv_layout(lens, heads, head_size),
                                      list(v)),
    }
    out, report = executor.build_and_run(schedule, inputs)
    return [out.valid_slice(b) for b in range(bsz)], report


def attnv_compiled(attn: Sequence[np.ndarray], v: Sequence[np.ndarray],
                   backend: str = "vector",
                   executor: Optional["Executor"] = None,
                   ) -> Tuple[List[np.ndarray], "ExecutionReport"]:
    """``softmax(QK^T) @ V`` through the CoRa pipeline.

    ``attn[b]`` has shape ``(heads, s_b, s_b)``, ``v[b]`` has shape
    ``(heads, s_b, head_size)``.
    """
    from repro.core.executor import shared_executor

    if executor is None:
        executor = shared_executor(backend)
    return _run_attnv(
        attn, v,
        lambda lens, heads, hd: _attnv_schedule(lens.tobytes(), heads, hd),
        executor)


def sdpa_compiled(q: Sequence[np.ndarray], k: Sequence[np.ndarray],
                  v: Sequence[np.ndarray], head_size: int,
                  backend: str = "vector",
                  executor: Optional["Executor"] = None,
                  masked: bool = False) -> List[np.ndarray]:
    """Scaled dot-product attention through the CoRa pipeline: compiled
    QK^T -> compiled ragged (optionally causal-masked) softmax -> compiled
    AttnV.  With ``masked=True`` the additive triangular mask runs as a
    fifth compiled kernel (decoder-style masking, Figure 18); the whole
    chain stays on the vector backend's fast path."""
    from repro.core.executor import shared_executor
    from repro.ops.softmax import masked_softmax_compiled

    if executor is None:
        executor = shared_executor(backend)
    scale = 1.0 / float(np.sqrt(head_size))
    scores, _ = qkt_compiled(q, k, scale=scale, executor=executor)
    if masked:
        probs, _ = masked_softmax_compiled(scores, executor=executor)
    else:
        probs, _ = softmax_compiled(scores, executor=executor)
    out, _ = attnv_compiled(probs, v, executor=executor)
    return out


@lru_cache(maxsize=64)
def _attnv_split_schedule(lens_bytes: bytes, heads: int, head_size: int,
                          tile: int, remap: bool) -> Schedule:
    """The Figure 14 "Split" AttnV schedule: the query-row vloop is split by
    the tile size, producing a guarded inner loop for the partial tail tile
    (no loop padding).  With ``remap`` the governing loop additionally
    carries a sort-descending thread remap (heaviest sequences first)."""
    schedule = _attnv_schedule(lens_bytes, heads, head_size)
    op = schedule.operator
    # Schedules are memoized; never mutate the shared unsplit instance.
    schedule = Schedule(op)
    qi = op.dims[2]
    schedule.split(qi, int(tile))
    if remap:
        batch = op.dims[0]
        schedule.parallel(batch)
        schedule.thread_remap(batch, "sort_desc")
    return schedule


def attnv_split_compiled(attn: Sequence[np.ndarray], v: Sequence[np.ndarray],
                         tile: int = 4,
                         backend: str = "vector",
                         executor: Optional["Executor"] = None,
                         remap: bool = False,
                         ) -> Tuple[List[np.ndarray], "ExecutionReport"]:
    """AttnV under the operation-splitting schedule (split query-row vloop
    with a guard for the tail tile).  Numerically identical to
    :func:`attnv_compiled`; exercises the guarded/split fast path."""
    from repro.core.executor import shared_executor

    if executor is None:
        executor = shared_executor(backend)
    return _run_attnv(
        attn, v,
        lambda lens, heads, hd: _attnv_split_schedule(
            lens.tobytes(), heads, hd, int(tile), bool(remap)),
        executor)


# ---------------------------------------------------------------------------
# Program-graph node builders
# ---------------------------------------------------------------------------


def qkt_node(program: "Program", q: str, k: str, lengths: Sequence[int],
             heads: int, head_size: int, scale: Optional[float] = None,
             name: str = "qkt", out: Optional[str] = None) -> str:
    """Append the ``Q K^T`` kernel to a program graph.

    ``q`` / ``k`` name ``[batch, heads, s(b), head_size]`` ragged values;
    the output value holds the ``[batch, heads, s(b), s(b)]`` scores.
    Reuses the memoized schedule of :func:`qkt_compiled` (or, under an
    active tuned-schedule policy, the memoized tuned variant for this
    raggedness bucket), so session compilation hits the same executor
    kernel cache.
    """
    from repro.ops.softmax import attention_scores_layout

    lens = np.ascontiguousarray(lengths, dtype=np.int64)
    schedule = _qkt_point_schedule(
        applied_point("qkt", lens), lens, int(heads), int(head_size),
        None if scale is None else float(scale))
    return program.add_kernel(name, schedule, {"Q": q, "K": k},
                              attention_scores_layout(lens, heads), out=out)


def attnv_node(program: "Program", attn: str, v: str, lengths: Sequence[int],
               heads: int, head_size: int, name: str = "attnv",
               out: Optional[str] = None) -> str:
    """Append the AttnV kernel (``probabilities @ V``) to a program graph.

    Under an active tuned-schedule policy the memoized split/remap
    variant selected for this raggedness bucket is used instead of the
    hand-picked default."""
    lens = np.ascontiguousarray(lengths, dtype=np.int64)
    schedule = _attnv_point_schedule(
        applied_point("attnv", lens), lens, int(heads), int(head_size))
    return program.add_kernel(name, schedule, {"Attn": attn, "V": v},
                              _qkv_layout(lens, int(heads), int(head_size)),
                              out=out)


def qkv_split_node(program: "Program", qkv: str, lengths: Sequence[int],
                   heads: int, head_size: int, prefix: str = "qkv",
                   ) -> Tuple[str, str, str]:
    """Split a packed ``(tokens, 3 * hidden)`` QKV matrix into per-sequence
    ``[batch, heads, s(b), head_size]`` ragged Q / K / V values.

    A host marshalling node: the same reshape/transpose the op-by-op
    numeric path performs, writing straight into the planned arena
    buffers.
    """
    lens = [int(s) for s in np.asarray(lengths, dtype=np.int64)]
    lens_arr = np.ascontiguousarray(lens, dtype=np.int64)
    heads, head_size = int(heads), int(head_size)

    def _split(q_t, k_t, v_t, qkv_mat):
        start = 0
        for b, s in enumerate(lens):
            sl = qkv_mat[start:start + s]
            reshaped = sl.reshape(s, 3, heads, head_size).transpose(1, 2, 0, 3)
            q_t.set_slice(b, reshaped[0])
            k_t.set_slice(b, reshaped[1])
            v_t.set_slice(b, reshaped[2])
            start += s

    return program.add_host(
        f"{prefix}.split", _split, [qkv],
        output_layouts={
            f"{prefix}.q": _qkv_layout(lens_arr, heads, head_size),
            f"{prefix}.k": _qkv_layout(lens_arr, heads, head_size),
            f"{prefix}.v": _qkv_layout(lens_arr, heads, head_size),
        },
        fills_output=True)


def attn_merge_node(program: "Program", attn: str, lengths: Sequence[int],
                    heads: int, head_size: int, name: str = "attn.merge",
                    out: Optional[str] = None) -> str:
    """Merge per-sequence ``[heads, s(b), head_size]`` attention outputs
    back into the packed ``(tokens, hidden)`` matrix (host marshalling)."""
    lens = [int(s) for s in np.asarray(lengths, dtype=np.int64)]
    heads, head_size = int(heads), int(head_size)
    total = sum(lens)

    def _merge(out_mat, attn_t):
        start = 0
        for b, s in enumerate(lens):
            a = attn_t.valid_slice(b)
            out_mat[start:start + s] = a.transpose(1, 0, 2).reshape(
                s, heads * head_size)
            start += s

    (value,) = program.add_host(
        name, _merge, [attn],
        output_shapes={out or name: (total, heads * head_size)},
        fills_output=True)
    return value


def sdpa_nodes(program: "Program", q: str, k: str, v: str,
               lengths: Sequence[int], heads: int, head_size: int,
               masked: bool = False, prefix: str = "sdpa") -> str:
    """Append the full SDPA kernel chain to a program graph: scaled QK^T,
    the (optionally causal-masked) four/five-kernel softmax, and AttnV --
    the same compiled chain :func:`sdpa_compiled` dispatches op by op."""
    from repro.ops.softmax import masked_softmax_nodes, softmax_nodes

    scale = 1.0 / float(np.sqrt(head_size))
    scores = qkt_node(program, q, k, lengths, heads, head_size, scale=scale,
                      name=f"{prefix}.qkt", out=f"{prefix}.scores")
    if masked:
        probs = masked_softmax_nodes(program, scores, lengths, heads,
                                     prefix=f"{prefix}.softmax")
    else:
        probs = softmax_nodes(program, scores, lengths, heads,
                              prefix=f"{prefix}.softmax")
    return attnv_node(program, probs, v, lengths, heads, head_size,
                      name=f"{prefix}.attnv", out=f"{prefix}.attn")


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------


def _attention_gemm_launch(
    name: str,
    lengths: np.ndarray,
    config: TransformerConfig,
    impl_class: str,
    tile: int,
    masked: bool = False,
    indirect_overhead: float = 0.02,
) -> KernelLaunch:
    """A QK^T-like or AttnV-like batched gemm over ragged attention matrices."""
    s = lengths.astype(np.float64)
    factor = 0.5 if masked else 1.0
    flops = float((2.0 * np.square(s) * config.hidden_size * factor).sum())
    elements = float((config.num_heads * np.square(s) * factor
                      + 2 * s * config.hidden_size).sum())
    works = []
    for length in lengths:
        tiles = max(int(length) // tile, 1)
        works.extend([2.0 * tile * config.hidden_size * float(length) * factor]
                     * tiles * config.num_heads)
    work = np.asarray(works)
    return KernelLaunch(
        name=name,
        flops=flops,
        bytes_moved=elements * 4.0,
        impl_class=impl_class,
        parallel_tasks=work.size,
        task_work=work,
        balanced=True,
        indirect_access_overhead=indirect_overhead,
    )


def qkt_launch(lengths: Sequence[int], config: TransformerConfig = PAPER_BASE_CONFIG,
               impl_class: str = "compiler", pad_to: Optional[int] = None,
               loop_pad: Optional[int] = None, masked: bool = False) -> KernelLaunch:
    """The QK^T kernel; fuses two vloops, hence a slightly higher
    indirect-access overhead (Section 7.4, Figure 23)."""
    s = np.asarray(lengths, dtype=np.int64)
    if pad_to is not None:
        s = np.full_like(s, pad_to)
    elif loop_pad:
        s = ceil_to(s, loop_pad)
    return _attention_gemm_launch("QKT", s, config, impl_class,
                                  config.attention_tile, masked=masked,
                                  indirect_overhead=0.06)


def attnv_launch(lengths: Sequence[int], config: TransformerConfig = PAPER_BASE_CONFIG,
                 impl_class: str = "compiler", pad_to: Optional[int] = None,
                 loop_pad: Optional[int] = None, masked: bool = False) -> KernelLaunch:
    """The AttnV kernel (attention probabilities times values)."""
    s = np.asarray(lengths, dtype=np.int64)
    if pad_to is not None:
        s = np.full_like(s, pad_to)
    elif loop_pad:
        s = ceil_to(s, loop_pad)
    return _attention_gemm_launch("AttnV", s, config, impl_class,
                                  config.attention_tile, masked=masked,
                                  indirect_overhead=0.02)


# -- operation splitting + horizontal fusion (Figures 14, 20, 21) -----------------


def split_hfuse_workload(
    lengths: Sequence[int],
    operator: str = "AttnV",
    variant: str = "NoSplit",
    config: TransformerConfig = PAPER_BASE_CONFIG,
    tile: Optional[int] = None,
) -> Workload:
    """The NoSplit / Split / Split-HFused variants of one attention operator.

    * ``NoSplit`` pads the non-reduction vloop to the tile size: more
      computation, full parallelism, one kernel.
    * ``Split`` uses operation splitting to avoid the padding: the main
      (tile-aligned) part and the tail run as *two* kernels, each with less
      parallelism.
    * ``Split-HFused`` horizontally fuses the two pieces back into a single
      kernel so they execute concurrently.
    """
    tile = tile or config.attention_tile
    s = np.asarray(lengths, dtype=np.int64)
    launch_builder = attnv_launch if operator.lower() == "attnv" else qkt_launch

    if variant == "NoSplit":
        # Only the *non-reduction* vloop is padded to the tile size, so the
        # extra work scales linearly (not quadratically) with the padding.
        kernel = launch_builder(s, config)
        padded = ceil_to(s, tile).astype(np.float64)
        scale = float((padded * s).sum()) / max(float((s * s).sum()), 1.0)
        kernel.flops *= scale
        if kernel.task_work is not None:
            kernel.task_work = kernel.task_work * scale
        kernel.name = f"{operator}-nosplit"
        return Workload(name="NoSplit", kernels=[kernel])

    # Operation splitting: the tile-aligned "main" part of each sequence and
    # the sub-tile "tail" run as separate operators over the same data.  Only
    # the *non-reduction* vloop is split, so each piece still reduces over
    # the full sequence length; the total work equals the unpadded operator.
    main_lengths = (s // tile) * tile
    tail_lengths = s - main_lengths

    def _piece(rows: np.ndarray, label: str) -> Optional[KernelLaunch]:
        active = rows > 0
        if not active.any():
            return None
        kernel = launch_builder(rows[active], config)
        # Re-scale: the piece computes ``rows`` output rows but reduces over
        # the full length ``s`` of each sequence, not over ``rows``.
        piece_sq = float((rows[active].astype(np.float64) ** 2).sum())
        true_work = float((rows[active].astype(np.float64) * s[active]).sum())
        scale = true_work / max(piece_sq, 1.0)
        kernel.flops *= scale
        if kernel.task_work is not None:
            kernel.task_work = kernel.task_work * scale
        kernel.name = f"{operator}-{label}"
        return kernel

    kernels: List[KernelLaunch] = []
    main = _piece(main_lengths, "main")
    tail = _piece(tail_lengths, "tail")
    if main is not None:
        kernels.append(main)
    if tail is not None:
        kernels.append(tail)
    if variant == "Split":
        return Workload(name="Split", kernels=kernels)
    if variant in ("Split-HFused", "Split1-HFused", "Split2-HFused"):
        for k in kernels:
            k.hfused_with = f"{operator}-hfused"
        workload = Workload(name=variant, kernels=kernels)
        if variant == "Split2-HFused":
            # Splitting the second vloop as well: even less padding but the
            # generated code gets more complex (extra integer work and
            # memory requests, Section D.6) -- modelled as extra overhead.
            for k in workload.kernels:
                k.indirect_access_overhead += 0.12
        return workload
    raise ValueError(f"unknown split/hfuse variant {variant!r}")


# -- masked SDPA (Figure 18) ---------------------------------------------------------


def masked_sdpa_workload(lengths: Sequence[int], strategy: str,
                         config: TransformerConfig = PAPER_BASE_CONFIG) -> Workload:
    """The three masked-SDPA execution strategies of Figure 18.

    ``"cora-nopad"`` partially pads both vloops (triangular computation),
    ``"cora-pad"`` fully pads the inner vloop (rectangular per sequence) and
    ``"pytorch"`` fully pads both vloops (rectangular at the batch maximum).
    """
    s = np.asarray(lengths, dtype=np.int64)
    if strategy == "cora-nopad":
        padded = ceil_to(s, config.loop_pad)
        kernels = [
            qkt_launch(padded, config, masked=True),
            _softmax_masked_launch(padded, config, masked=True),
            attnv_launch(padded, config, masked=True),
        ]
        return Workload(name="CoRa-NoPad", kernels=kernels)
    if strategy == "cora-pad":
        padded = ceil_to(s, config.loop_pad)
        kernels = [
            qkt_launch(padded, config, masked=False),
            _softmax_masked_launch(padded, config, masked=False),
            attnv_launch(padded, config, masked=False),
        ]
        return Workload(name="CoRa-Pad", kernels=kernels)
    if strategy == "pytorch":
        full = int(s.max())
        kernels = [
            qkt_launch(s, config, pad_to=full, impl_class="framework"),
            _softmax_masked_launch(np.full_like(s, full), config,
                                   impl_class="framework", masked=False),
            attnv_launch(s, config, pad_to=full, impl_class="framework"),
        ]
        workload = Workload(name="PyTorch", kernels=kernels,
                            dispatch_overhead_us=8.0)
        return workload
    raise ValueError(f"unknown masked-SDPA strategy {strategy!r}")


def _softmax_masked_launch(lengths: np.ndarray, config: TransformerConfig,
                           impl_class: str = "compiler",
                           masked: bool = False) -> KernelLaunch:
    s = lengths.astype(np.float64)
    factor = 0.5 if masked else 1.0
    elements = float((config.num_heads * np.square(s) * factor).sum())
    return KernelLaunch(
        name="Softmax",
        flops=8.0 * elements,
        bytes_moved=2.0 * elements * 4.0,
        impl_class=impl_class,
        parallel_tasks=max(int(s.sum()) * config.num_heads, 1),
    )


# ---------------------------------------------------------------------------
# Tunable schedule spaces (repro.core.tunespace)
# ---------------------------------------------------------------------------
#
# The attention gemms expose the schedule knobs Figure 14 evaluates by
# hand: the query-row split tile (0 = unsplit) and the sort-descending
# thread remap.  The default point is the hand-picked schedule the node
# builders ship today, so the default is always a valid space member.


def _attention_tune_space(op: str, lengths: Sequence[int] = (),
                          **_) -> TuneSpace:
    max_len = max((int(s) for s in lengths), default=16)
    tiles = (0,) + tuple(t for t in (2, 4, 8, 16) if t <= max_len)
    return TuneSpace(
        op,
        [TuneParam("tile", tiles), TuneParam("remap", (False, True))],
        TunePoint({"tile": 0, "remap": False}))


def _qkt_point_schedule(point: Optional[TunePoint], lens: np.ndarray,
                        heads: int, head_size: int,
                        scale: Optional[float]) -> Schedule:
    tile = int(point.get("tile", 0)) if point is not None else 0
    if tile:
        return _qkt_split_schedule(lens.tobytes(), heads, head_size, scale,
                                   tile, bool(point.get("remap", False)))
    return _qkt_schedule(lens.tobytes(), heads, head_size, scale)


def _attnv_point_schedule(point: Optional[TunePoint], lens: np.ndarray,
                          heads: int, head_size: int) -> Schedule:
    tile = int(point.get("tile", 0)) if point is not None else 0
    if tile:
        return _attnv_split_schedule(lens.tobytes(), heads, head_size,
                                     tile, bool(point.get("remap", False)))
    return _attnv_schedule(lens.tobytes(), heads, head_size)


def _qkt_tune_build(point: TunePoint, lengths: Sequence[int],
                    heads: int = 2, head_size: int = 8,
                    scale: Optional[float] = None, **_) -> Schedule:
    lens = np.ascontiguousarray(lengths, dtype=np.int64)
    return _qkt_point_schedule(point, lens, int(heads), int(head_size),
                               None if scale is None else float(scale))


def _attnv_tune_build(point: TunePoint, lengths: Sequence[int],
                      heads: int = 2, head_size: int = 8, **_) -> Schedule:
    lens = np.ascontiguousarray(lengths, dtype=np.int64)
    return _attnv_point_schedule(point, lens, int(heads), int(head_size))


def _attention_tune_launch(name: str, point: TunePoint,
                           lengths: Sequence[int], heads: int,
                           head_size: int) -> Workload:
    """A candidate point as a cost-model workload for analytical pruning.

    Finer tiles mean more, smaller tasks (better occupancy and balance on
    a parallel substrate, slightly more indirect-access bookkeeping); the
    remap models as a balanced greedy assignment of the per-tile work."""
    lens = np.asarray(lengths, dtype=np.int64)
    s = lens.astype(np.float64)
    max_len = int(s.max()) if s.size else 1
    tile = int(point.get("tile", 0)) or max(max_len, 1)
    remap = bool(point.get("remap", False))
    flops = float((2.0 * np.square(s) * heads * head_size).sum())
    elements = float((heads * np.square(s) + 2 * s * heads * head_size).sum())
    works = []
    for length in lens:
        tiles = max(-(-int(length) // tile), 1)
        works.extend(
            [2.0 * min(tile, int(length)) * head_size * float(length)]
            * tiles * heads)
    work = np.asarray(works, dtype=np.float64)
    kernel = KernelLaunch(
        name=name,
        flops=flops,
        bytes_moved=elements * 4.0,
        impl_class="compiler",
        parallel_tasks=work.size,
        task_work=work,
        balanced=remap or tile >= max_len,
        indirect_access_overhead=0.02 + (0.01 if tile < max_len else 0.0),
    )
    return Workload(name=f"{name}-tune", kernels=[kernel])


def _qkt_tune_launch(point: TunePoint, lengths: Sequence[int],
                     heads: int = 2, head_size: int = 8, **_) -> Workload:
    return _attention_tune_launch("QKT", point, lengths, int(heads),
                                  int(head_size))


def _attnv_tune_launch(point: TunePoint, lengths: Sequence[int],
                       heads: int = 2, head_size: int = 8, **_) -> Workload:
    return _attention_tune_launch("AttnV", point, lengths, int(heads),
                                  int(head_size))


def _qkt_tune_inputs(lengths: Sequence[int], rng: np.random.Generator,
                     heads: int = 2, head_size: int = 8,
                     **_) -> Dict[str, RaggedTensor]:
    lens = np.ascontiguousarray(lengths, dtype=np.int64)
    heads, head_size = int(heads), int(head_size)
    layout = _qkv_layout(lens, heads, head_size)
    q = [rng.standard_normal((heads, int(s), head_size)).astype(np.float32)
         for s in lens]
    k = [rng.standard_normal((heads, int(s), head_size)).astype(np.float32)
         for s in lens]
    return {"Q": RaggedTensor.from_slices(layout, q),
            "K": RaggedTensor.from_slices(layout, k)}


def _attnv_tune_inputs(lengths: Sequence[int], rng: np.random.Generator,
                       heads: int = 2, head_size: int = 8,
                       **_) -> Dict[str, RaggedTensor]:
    from repro.ops.softmax import attention_scores_layout

    lens = np.ascontiguousarray(lengths, dtype=np.int64)
    heads, head_size = int(heads), int(head_size)
    attn = [rng.standard_normal((heads, int(s), int(s))).astype(np.float32)
            for s in lens]
    v = [rng.standard_normal((heads, int(s), head_size)).astype(np.float32)
         for s in lens]
    return {
        "Attn": RaggedTensor.from_slices(attention_scores_layout(lens, heads),
                                         attn),
        "V": RaggedTensor.from_slices(_qkv_layout(lens, heads, head_size), v),
    }


register_schedule_memo("attention.qkt", _qkt_schedule)
register_schedule_memo("attention.qkt_split", _qkt_split_schedule)
register_schedule_memo("attention.attnv", _attnv_schedule)
register_schedule_memo("attention.attnv_split", _attnv_split_schedule)

register_tune_op(
    "qkt",
    lambda **ctx: _attention_tune_space("qkt", **ctx),
    build_fn=_qkt_tune_build,
    launch_fn=_qkt_tune_launch,
    inputs_fn=_qkt_tune_inputs)
register_tune_op(
    "attnv",
    lambda **ctx: _attention_tune_space("attnv", **ctx),
    build_fn=_attnv_tune_build,
    launch_fn=_attnv_tune_launch,
    inputs_fn=_attnv_tune_inputs)
