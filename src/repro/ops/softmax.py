"""Ragged softmax.

The softmax of the attention scores is computed row-wise over a ragged
matrix: for batch element ``b`` the rows and columns both have length
``s(b)``.  A fully padded implementation must either mask the padded
columns (extra conditional work per element) or produce garbage that the
next operator must ignore; the ragged implementation touches only valid
elements (Section 7.2 discusses why CoRa's softmax also beats
FasterTransformer's schedule).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.substrates.costmodel import KernelLaunch, softmax_flops


def softmax_slices(scores: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Numerically stable row-wise softmax over a list of per-batch matrices.

    Each element of ``scores`` is an array whose last dimension is the
    (variable) number of attention columns for that batch element.
    """
    out = []
    for s in scores:
        shifted = s - s.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        out.append(e / e.sum(axis=-1, keepdims=True))
    return out


def masked_softmax_dense(scores: np.ndarray, lengths: Sequence[int]) -> np.ndarray:
    """The fully padded baseline: mask invalid columns then softmax.

    ``scores`` has shape ``(batch, heads, max_len, max_len)``; columns and
    rows beyond each sequence's length are masked to ``-inf`` / zeroed.
    """
    lengths = np.asarray(lengths)
    batch, heads, max_len, _ = scores.shape
    col = np.arange(max_len)
    mask = col[None, :] < lengths[:, None]  # (batch, max_len)
    masked = np.where(mask[:, None, None, :], scores, -np.inf)
    shifted = masked - masked.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    out = e / np.maximum(e.sum(axis=-1, keepdims=True), 1e-30)
    row_mask = mask[:, None, :, None]
    return np.where(row_mask, out, 0.0)


def softmax_launch(lengths: Sequence[int], num_heads: int,
                   impl_class: str = "compiler",
                   padded_to: int | None = None,
                   name: str = "Softmax") -> KernelLaunch:
    """Describe the softmax kernel over the (possibly padded) attention matrix."""
    s = np.asarray(lengths, dtype=np.float64)
    if padded_to is not None:
        s = np.full_like(s, float(padded_to))
    rows = num_heads * s
    flops = float(softmax_flops(rows, s).sum()) if rows.ndim else softmax_flops(rows, s)
    flops = float((8.0 * num_heads * np.square(s)).sum())
    elements = float((num_heads * np.square(s)).sum())
    return KernelLaunch(
        name=name,
        flops=flops,
        bytes_moved=elements * 8.0,
        impl_class=impl_class,
        parallel_tasks=int(num_heads * s.size * max(s.mean(), 1) // 32) + 1,
        task_work=num_heads * np.square(s),
        balanced=True,
    )
