"""Ragged softmax.

The softmax of the attention scores is computed row-wise over a ragged
matrix: for batch element ``b`` the rows and columns both have length
``s(b)``.  A fully padded implementation must either mask the padded
columns (extra conditional work per element) or produce garbage that the
next operator must ignore; the ragged implementation touches only valid
elements (Section 7.2 discusses why CoRa's softmax also beats
FasterTransformer's schedule).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent
from repro.core.ir import LoopVar, exp
from repro.core.operator import (
    compute,
    input_tensor,
    max_reduce,
    reduce_axis,
    sum_reduce,
)
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout
from repro.core.tunespace import register_schedule_memo
from repro.substrates.costmodel import KernelLaunch, softmax_flops


def softmax_slices(scores: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Numerically stable row-wise softmax over a list of per-batch matrices.

    Each element of ``scores`` is an array whose last dimension is the
    (variable) number of attention columns for that batch element.
    """
    out = []
    for s in scores:
        shifted = s - s.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        out.append(e / e.sum(axis=-1, keepdims=True))
    return out


def masked_softmax_dense(scores: np.ndarray, lengths: Sequence[int]) -> np.ndarray:
    """The fully padded baseline: mask invalid columns then softmax.

    ``scores`` has shape ``(batch, heads, max_len, max_len)``; columns and
    rows beyond each sequence's length are masked to ``-inf`` / zeroed.
    """
    lengths = np.asarray(lengths)
    batch, heads, max_len, _ = scores.shape
    col = np.arange(max_len)
    mask = col[None, :] < lengths[:, None]  # (batch, max_len)
    masked = np.where(mask[:, None, None, :], scores, -np.inf)
    shifted = masked - masked.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    out = e / np.maximum(e.sum(axis=-1, keepdims=True), 1e-30)
    row_mask = mask[:, None, :, None]
    return np.where(row_mask, out, 0.0)


# -- compiled (executor-backed) implementation ------------------------------------


def attention_scores_layout(lengths: Sequence[int], num_heads: int,
                            ) -> RaggedLayout:
    """Layout of the ragged attention-score tensor ``[batch, heads, s(b), s(b)]``."""
    lens = np.asarray(lengths, dtype=np.int64)
    batch = Dim("batch")
    return RaggedLayout(
        [batch, Dim("head"), Dim("qi"), Dim("kj")],
        [ConstExtent(lens.size), ConstExtent(num_heads),
         VarExtent(batch, lens), VarExtent(batch, lens)])


def attention_rows_layout(lengths: Sequence[int], num_heads: int,
                          ) -> RaggedLayout:
    """Layout of a per-row attention reduction ``[batch, heads, s(b)]``
    (the row-max and row-sum tensors of the softmax chain)."""
    lens = np.asarray(lengths, dtype=np.int64)
    batch = Dim("batch")
    return RaggedLayout(
        [batch, Dim("head"), Dim("qi")],
        [ConstExtent(lens.size), ConstExtent(num_heads),
         VarExtent(batch, lens)])


@lru_cache(maxsize=64)
def _softmax_schedules(lens_bytes: bytes, heads: int,
                       ) -> Tuple[Schedule, Schedule, Schedule, Schedule]:
    """The four softmax kernels (row max, shifted exp, row sum, normalise),
    memoized per (lengths, heads) so the executor's kernel cache hits."""
    lens = np.frombuffer(lens_bytes, dtype=np.int64)
    bsz = int(lens.size)
    batch, head, qi, kj = Dim("batch"), Dim("head"), Dim("qi"), Dim("kj")
    row_extents = [ConstExtent(bsz), ConstExtent(heads), VarExtent(batch, lens)]
    mat_extents = row_extents + [VarExtent(batch, lens)]

    s_in = input_tensor("S", [batch, head, qi, kj], mat_extents)
    m_in = input_tensor("M", [batch, head, qi], row_extents)
    e_in = input_tensor("E", [batch, head, qi, kj], mat_extents)
    z_in = input_tensor("Z", [batch, head, qi], row_extents)

    jax = reduce_axis(VarExtent(batch, lens), "j")
    max_op = compute("M", [batch, head, qi], row_extents,
                     lambda b, h, i: max_reduce(
                         s_in[b, h, i, LoopVar(jax.dim)], jax))
    exp_op = compute("E", [batch, head, qi, kj], mat_extents,
                     lambda b, h, i, j: exp(s_in[b, h, i, j] - m_in[b, h, i]))
    sumax = reduce_axis(VarExtent(batch, lens), "j2")
    sum_op = compute("Z", [batch, head, qi], row_extents,
                     lambda b, h, i: sum_reduce(
                         e_in[b, h, i, LoopVar(sumax.dim)], sumax))
    div_op = compute("P", [batch, head, qi, kj], mat_extents,
                     lambda b, h, i, j: e_in[b, h, i, j] / z_in[b, h, i])
    return (Schedule(max_op), Schedule(exp_op), Schedule(sum_op),
            Schedule(div_op))


def _softmax_chain(s_tensor: RaggedTensor, lens: np.ndarray, heads: int,
                   executor: "Executor") -> Tuple[RaggedTensor, list]:
    """Run the four-kernel softmax chain on a packed score tensor."""
    max_sch, exp_sch, sum_sch, div_sch = _softmax_schedules(lens.tobytes(),
                                                            heads)
    reports = []
    m_out, rep = executor.build_and_run(max_sch, {"S": s_tensor})
    reports.append(rep)
    e_out, rep = executor.build_and_run(exp_sch, {"S": s_tensor, "M": m_out})
    reports.append(rep)
    z_out, rep = executor.build_and_run(sum_sch, {"E": e_out})
    reports.append(rep)
    p_out, rep = executor.build_and_run(div_sch, {"E": e_out, "Z": z_out})
    reports.append(rep)
    return p_out, reports


def softmax_compiled(scores: Sequence[np.ndarray],
                     backend: str = "vector",
                     executor: Optional["Executor"] = None,
                     ) -> Tuple[List[np.ndarray], List["ExecutionReport"]]:
    """Row-wise ragged softmax through the CoRa pipeline.

    ``scores[b]`` has shape ``(heads, s_b, s_b)``.  Compiled as the same
    four-kernel chain a real ragged compiler emits (row max, shifted exp,
    row sum, normalise), each kernel scheduled and code-generated with the
    chosen backend.  Returns the per-sequence probabilities and the four
    execution reports.
    """
    from repro.core.executor import shared_executor

    if executor is None:
        executor = shared_executor(backend)
    lens = np.ascontiguousarray([s.shape[-1] for s in scores], dtype=np.int64)
    heads = int(scores[0].shape[0])
    bsz = int(lens.size)
    s_tensor = RaggedTensor.from_slices(
        attention_scores_layout(lens, heads), list(scores))
    p_out, reports = _softmax_chain(s_tensor, lens, heads, executor)
    return [p_out.valid_slice(b) for b in range(bsz)], reports


# -- masked (triangular) softmax ---------------------------------------------------


@lru_cache(maxsize=64)
def causal_mask_matrix(max_len: int) -> np.ndarray:
    """Dense additive causal mask: 0 on and below the diagonal, ``-inf``
    above.  Shared by every sequence of the batch (rows/columns past a
    sequence's length are simply never indexed by the ragged kernels).
    Memoized per size; treat the returned array as immutable."""
    mask = np.zeros((max_len, max_len), dtype=np.float32)
    mask[np.triu_indices(max_len, k=1)] = -np.inf
    return mask


@lru_cache(maxsize=64)
def _mask_schedule(lens_bytes: bytes, heads: int, max_len: int) -> Schedule:
    """Additive-mask kernel ``SM[b,h,i,j] = S[b,h,i,j] + Mask[i,j]``.

    This is how the masked-SDPA schedule reaches the compiled pipeline
    despite the prototype's vdims-depend-on-the-outermost-dim restriction:
    the triangular iteration space is expressed as a dense mask input
    indexed by the two inner vloops, which the vector backend turns into a
    single broadcast add over each instance bucket.
    """
    lens = np.frombuffer(lens_bytes, dtype=np.int64)
    bsz = int(lens.size)
    batch, head, qi, kj = Dim("batch"), Dim("head"), Dim("qi"), Dim("kj")
    mat_extents = [ConstExtent(bsz), ConstExtent(heads),
                   VarExtent(batch, lens), VarExtent(batch, lens)]
    s_in = input_tensor("S", [batch, head, qi, kj], mat_extents)
    m_in = input_tensor("Mask", [Dim("mi"), Dim("mj")],
                        [ConstExtent(max_len), ConstExtent(max_len)])
    op = compute("SM", [batch, head, qi, kj], mat_extents,
                 lambda b, h, i, j: s_in[b, h, i, j] + m_in[i, j])
    return Schedule(op)


def masked_softmax_compiled(scores: Sequence[np.ndarray],
                            backend: str = "vector",
                            executor: Optional["Executor"] = None,
                            ) -> Tuple[List[np.ndarray], List["ExecutionReport"]]:
    """Causal-masked row-wise softmax through the CoRa pipeline.

    Applies the additive triangular mask as a fifth compiled kernel in
    front of the standard four-kernel chain; every row keeps at least its
    diagonal element, so the masked rows stay NaN-free without a
    ``nan_to_num`` pass (matching ``sdpa_slices(masked=True)``).
    """
    from repro.core.executor import shared_executor

    if executor is None:
        executor = shared_executor(backend)
    lens = np.ascontiguousarray([s.shape[-1] for s in scores], dtype=np.int64)
    heads = int(scores[0].shape[0])
    bsz = int(lens.size)
    max_len = max(int(lens.max()) if bsz else 0, 1)
    s_tensor = RaggedTensor.from_slices(
        attention_scores_layout(lens, heads), list(scores))
    mask_sch = _mask_schedule(lens.tobytes(), heads, max_len)
    masked, rep = executor.build_and_run(
        mask_sch, {"S": s_tensor, "Mask": causal_mask_matrix(max_len)})
    p_out, reports = _softmax_chain(masked, lens, heads, executor)
    return [p_out.valid_slice(b) for b in range(bsz)], [rep] + reports


# -- program-graph node builders ---------------------------------------------------


def softmax_nodes(program: "Program", scores: str, lengths: Sequence[int],
                  num_heads: int, prefix: str = "softmax") -> str:
    """Append the four-kernel ragged softmax chain to a program graph.

    ``scores`` names a ``[batch, heads, s(b), s(b)]`` ragged value; the
    returned value name holds the row-normalised probabilities.  The
    schedules are the same memoized objects :func:`softmax_compiled` uses,
    so a session compiling the program shares the executor's kernel cache
    with op-by-op execution.
    """
    lens = np.ascontiguousarray(lengths, dtype=np.int64)
    max_sch, exp_sch, sum_sch, div_sch = _softmax_schedules(lens.tobytes(),
                                                           int(num_heads))
    rows = lambda: attention_rows_layout(lens, num_heads)
    mat = lambda: attention_scores_layout(lens, num_heads)
    m = program.add_kernel(f"{prefix}.max", max_sch, {"S": scores},
                           rows(), out=f"{prefix}.m")
    e = program.add_kernel(f"{prefix}.exp", exp_sch, {"S": scores, "M": m},
                           mat(), out=f"{prefix}.e")
    z = program.add_kernel(f"{prefix}.sum", sum_sch, {"E": e},
                           rows(), out=f"{prefix}.z")
    return program.add_kernel(f"{prefix}.div", div_sch, {"E": e, "Z": z},
                              mat(), out=f"{prefix}.p")


def masked_softmax_nodes(program: "Program", scores: str,
                         lengths: Sequence[int], num_heads: int,
                         prefix: str = "softmax") -> str:
    """Causal-masked softmax as program nodes: the additive triangular-mask
    kernel (a dense mask constant shared across the batch) followed by the
    standard four-kernel chain of :func:`softmax_nodes`."""
    lens = np.ascontiguousarray(lengths, dtype=np.int64)
    max_len = max(int(lens.max()) if lens.size else 0, 1)
    mask_sch = _mask_schedule(lens.tobytes(), int(num_heads), max_len)
    mask = program.add_constant(f"{prefix}.mask", causal_mask_matrix(max_len))
    masked = program.add_kernel(
        f"{prefix}.addmask", mask_sch, {"S": scores, "Mask": mask},
        attention_scores_layout(lens, num_heads), out=f"{prefix}.sm")
    return softmax_nodes(program, masked, lens, num_heads, prefix=prefix)


register_schedule_memo("softmax.chain", _softmax_schedules)
register_schedule_memo("softmax.mask", _mask_schedule)
register_schedule_memo("softmax.causal_mask_matrix", causal_mask_matrix)


def softmax_launch(lengths: Sequence[int], num_heads: int,
                   impl_class: str = "compiler",
                   padded_to: int | None = None,
                   name: str = "Softmax") -> KernelLaunch:
    """Describe the softmax kernel over the (possibly padded) attention matrix."""
    s = np.asarray(lengths, dtype=np.float64)
    if padded_to is not None:
        s = np.full_like(s, float(padded_to))
    rows = num_heads * s
    flops = float(softmax_flops(rows, s).sum()) if rows.ndim else softmax_flops(rows, s)
    flops = float((8.0 * num_heads * np.square(s)).sum())
    elements = float((num_heads * np.square(s)).sum())
    return KernelLaunch(
        name=name,
        flops=flops,
        bytes_moved=elements * 8.0,
        impl_class=impl_class,
        parallel_tasks=int(num_heads * s.size * max(s.mean(), 1) // 32) + 1,
        task_work=num_heads * np.square(s),
        balanced=True,
    )
